// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "shard/shard_worker.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "knn/selection.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/json.h"

namespace knnshap {

namespace {

/// A dead child makes the next write raise SIGPIPE, which would kill the
/// *router* process; with it ignored the write fails with EPIPE and the
/// worker latches Unavailable instead. Installed once, process-wide.
std::once_flag sigpipe_once;
void IgnoreSigpipe() {
  std::call_once(sigpipe_once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

bool ParseHexFingerprint(const std::string& hex, uint64_t* out) {
  if (hex.size() < 3 || hex[0] != '0' || (hex[1] != 'x' && hex[1] != 'X')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(hex.c_str() + 2, &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// InProcessShardWorker
// ---------------------------------------------------------------------------

bool InProcessShardWorker::Candidates(std::span<const float> query, size_t r,
                                      std::span<double> dists,
                                      std::vector<int>* run) {
  const size_t begin = range_.row_begin;
  const size_t rows = range_.Rows();
  // Compact-out contract: the slice written here is bit-identical to the
  // matching slice of a whole-corpus ComputeDistances pass.
  ComputeDistancesRange(corpus_->features, query, metric_, norms_, begin,
                        range_.row_end, dists.subspan(begin, rows));
  if (CancelRequested()) {
    run->clear();
    return true;  // the router re-checks the token and discards the query
  }
  // Local selection == restriction of the global order: the tie break by
  // local index is monotone under the constant row offset.
  thread_local std::vector<int> local;
  PartialArgsortDistances(std::span<const double>(dists.data() + begin, rows), r,
                          &local);
  run->clear();
  run->reserve(local.size());
  for (int i : local) run->push_back(i + static_cast<int>(begin));
  return true;
}

// ---------------------------------------------------------------------------
// ProcessShardWorker
// ---------------------------------------------------------------------------

ProcessShardWorker::ProcessShardWorker(ShardRange range,
                                       std::vector<std::string> command,
                                       std::string corpus_name, Metric metric,
                                       uint64_t expected_fingerprint)
    : ShardWorker(range),
      command_(std::move(command)),
      corpus_name_(std::move(corpus_name)),
      metric_(metric),
      expected_fingerprint_(expected_fingerprint) {}

ProcessShardWorker::~ProcessShardWorker() {
  // Closing the child's stdin is the shutdown signal: its serve loop sees
  // EOF, drains and exits; the wait reaps it so no zombie outlives a
  // router re-fit.
  if (write_stream_ != nullptr) std::fclose(write_stream_);
  if (read_stream_ != nullptr) std::fclose(read_stream_);
  if (child_pid_ > 0) {
    int status = 0;
    waitpid(child_pid_, &status, 0);
  }
}

void ProcessShardWorker::Spawn(const Dataset& corpus) {
  KNNSHAP_CHECK(child_pid_ == -1, "shard worker already spawned");
  if (command_.empty()) {
    throw std::runtime_error("shard worker: empty worker command");
  }
  if (corpus.HasLabels() && corpus.HasTargets()) {
    // The inline load wire carries one trailing column; a two-channel
    // corpus cannot round-trip content-identically.
    throw std::runtime_error(
        "shard worker: corpus with both labels and targets cannot be shipped");
  }
  IgnoreSigpipe();

  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (pipe(to_child) != 0) {
    throw std::runtime_error("shard worker: pipe() failed");
  }
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    throw std::runtime_error("shard worker: pipe() failed");
  }
  // Close-on-exec on every end: a LATER sibling's fork+exec must not
  // inherit this worker's pipe fds, or this child's stdin would never see
  // EOF (shutdown would deadlock in waitpid — every child holding every
  // other child's write end open). The child's dup2 onto stdin/stdout
  // below clears the flag on the two copies it actually uses.
  for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
    fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    throw std::runtime_error("shard worker: fork() failed");
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(command_.size() + 1);
    for (const std::string& arg : command_) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  child_pid_ = pid;
  write_stream_ = fdopen(to_child[1], "w");
  read_stream_ = fdopen(from_child[0], "r");
  if (write_stream_ == nullptr || read_stream_ == nullptr) {
    throw std::runtime_error("shard worker: fdopen() failed");
  }

  // Ship the corpus once. Feature floats widen to double and print as
  // %.17g, which round-trips bit-exactly back to the same float in the
  // child — so the child's independently computed content fingerprint must
  // equal the parent's, and any transport corruption is caught here.
  JsonValue load = JsonValue::MakeObject();
  load.Set("op", JsonValue("load"));
  load.Set("name", JsonValue(corpus_name_));
  load.Set("target", JsonValue(corpus.HasLabels()
                                   ? "label"
                                   : (corpus.HasTargets() ? "target" : "none")));
  JsonValue rows = JsonValue::MakeArray();
  for (size_t i = 0; i < corpus.Size(); ++i) {
    JsonValue row = JsonValue::MakeArray();
    for (float f : corpus.features.Row(i)) {
      row.Append(JsonValue(static_cast<double>(f)));
    }
    if (corpus.HasLabels()) {
      row.Append(JsonValue(static_cast<double>(corpus.labels[i])));
    } else if (corpus.HasTargets()) {
      row.Append(JsonValue(corpus.targets[i]));
    }
    rows.Append(row);
  }
  load.Set("rows", std::move(rows));

  std::string response;
  if (!Exchange(load.Dump(), &response)) {
    throw std::runtime_error("shard worker: load failed: " + Health().message());
  }
  JsonParseResult parsed = ParseJson(response);
  if (!parsed.ok() || !parsed.value.Get("ok").AsBool(false)) {
    throw std::runtime_error("shard worker: load rejected: " + response);
  }
  uint64_t echoed = 0;
  if (!ParseHexFingerprint(parsed.value.Get("fingerprint").AsString(), &echoed) ||
      echoed != expected_fingerprint_) {
    throw std::runtime_error(
        "shard worker: corpus fingerprint mismatch after load (expected " +
        FingerprintHex(expected_fingerprint_) + ", got " +
        parsed.value.Get("fingerprint").AsString() + ")");
  }
}

void ProcessShardWorker::Latch(Status status) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_.ok()) health_ = std::move(status);
}

Status ProcessShardWorker::Health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

bool ProcessShardWorker::Exchange(const std::string& line, std::string* response) {
  if (write_stream_ == nullptr || read_stream_ == nullptr) {
    Latch(Status::Unavailable("shard worker is not running"));
    return false;
  }
  if (std::fputs(line.c_str(), write_stream_) < 0 ||
      std::fputc('\n', write_stream_) == EOF ||
      std::fflush(write_stream_) != 0) {
    Latch(Status::Unavailable("shard worker pipe closed on write"));
    return false;
  }
  char* buf = nullptr;
  size_t cap = 0;
  const ssize_t len = getline(&buf, &cap, read_stream_);
  if (len < 0) {
    std::free(buf);
    Latch(Status::Unavailable("shard worker died (eof on response pipe)"));
    return false;
  }
  response->assign(buf, static_cast<size_t>(len));
  std::free(buf);
  while (!response->empty() &&
         (response->back() == '\n' || response->back() == '\r')) {
    response->pop_back();
  }
  return true;
}

bool ProcessShardWorker::Candidates(std::span<const float> query, size_t r,
                                    std::span<double> dists,
                                    std::vector<int>* run) {
  run->clear();
  if (!Health().ok()) return false;

  JsonValue request = JsonValue::MakeObject();
  request.Set("op", JsonValue("candidates"));
  request.Set("train", JsonValue(corpus_name_));
  request.Set("metric", JsonValue(MetricName(metric_)));
  request.Set("r", JsonValue(static_cast<double>(r)));
  request.Set("row_begin", JsonValue(static_cast<double>(range_.row_begin)));
  request.Set("row_end", JsonValue(static_cast<double>(range_.row_end)));
  request.Set("fingerprint", JsonValue(FingerprintHex(range_.fingerprint)));
  JsonValue q = JsonValue::MakeArray();
  for (float f : query) q.Append(JsonValue(static_cast<double>(f)));
  request.Set("query", std::move(q));
  // Forward the *remaining* budget: the child's token, constructed after
  // this read, can never fire later than the parent's — so a child-side
  // deadline_exceeded implies the parent token is (about to be) expired
  // and the router's own post-fan-out check stays the authority.
  const CancelToken* token = ActiveCancelToken();
  if (token != nullptr && token->has_deadline()) {
    request.Set("deadline_ms",
                JsonValue(static_cast<double>(token->RemainingMs())));
  }

  std::string line;
  if (!Exchange(request.Dump(), &line)) return false;
  JsonParseResult parsed = ParseJson(line);
  if (!parsed.ok()) {
    Latch(Status::Error(StatusCode::kInternal,
                        "shard worker sent an unparseable response"));
    return false;
  }
  const JsonValue& response = parsed.value;
  if (!response.Get("ok").AsBool(false)) {
    if (response.Get("code").AsString() == "deadline_exceeded") {
      return false;  // propagated deadline; health stays OK
    }
    Latch(Status::Unavailable("shard worker error: " +
                              response.Get("error").AsString()));
    return false;
  }
  const JsonValue& indices = response.Get("indices");
  const JsonValue& distances = response.Get("dists");
  if (!indices.IsArray() || !distances.IsArray() ||
      indices.Items().size() != distances.Items().size()) {
    Latch(Status::Error(StatusCode::kInternal,
                        "shard worker returned a malformed candidate run"));
    return false;
  }
  run->reserve(indices.Items().size());
  for (size_t i = 0; i < indices.Items().size(); ++i) {
    const JsonValue& index = indices.Items()[i];
    const JsonValue& dist = distances.Items()[i];
    const double raw = index.AsNumber(-1.0);
    const int row = static_cast<int>(raw);
    if (!index.IsNumber() || !dist.IsNumber() ||
        static_cast<double>(row) != raw ||
        row < static_cast<int>(range_.row_begin) ||
        row >= static_cast<int>(range_.row_end)) {
      Latch(Status::Error(StatusCode::kInternal,
                          "shard worker returned an out-of-range candidate"));
      run->clear();
      return false;
    }
    dists[static_cast<size_t>(row)] = dist.AsNumber();
    run->push_back(row);
  }
  return true;
}

}  // namespace knnshap
