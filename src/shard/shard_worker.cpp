// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "shard/shard_worker.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "knn/selection.h"
#include "shard/wire.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/json.h"

namespace knnshap {

void IgnoreSigpipeForShardTransport() {
  // A dead peer makes the next write raise SIGPIPE, which would kill the
  // *router* process; with it ignored the write fails with EPIPE and the
  // worker latches Unavailable instead. Installed once, process-wide
  // (shared with the socket transport, socket_worker.cpp).
  static std::once_flag sigpipe_once;
  std::call_once(sigpipe_once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

// ---------------------------------------------------------------------------
// InProcessShardWorker
// ---------------------------------------------------------------------------

bool InProcessShardWorker::Candidates(std::span<const float> query, size_t r,
                                      std::span<double> dists,
                                      std::vector<int>* run) {
  const size_t begin = range_.row_begin;
  const size_t rows = range_.Rows();
  // Compact-out contract: the slice written here is bit-identical to the
  // matching slice of a whole-corpus ComputeDistances pass.
  ComputeDistancesRange(corpus_->features, query, metric_, norms_, begin,
                        range_.row_end, dists.subspan(begin, rows));
  if (CancelRequested()) {
    run->clear();
    return true;  // the router re-checks the token and discards the query
  }
  // Local selection == restriction of the global order: the tie break by
  // local index is monotone under the constant row offset.
  thread_local std::vector<int> local;
  PartialArgsortDistances(std::span<const double>(dists.data() + begin, rows), r,
                          &local);
  run->clear();
  run->reserve(local.size());
  for (int i : local) run->push_back(i + static_cast<int>(begin));
  return true;
}

// ---------------------------------------------------------------------------
// ProcessShardWorker
// ---------------------------------------------------------------------------

ProcessShardWorker::ProcessShardWorker(ShardRange range,
                                       std::vector<std::string> command,
                                       std::string corpus_name, Metric metric,
                                       uint64_t expected_fingerprint)
    : ShardWorker(range),
      command_(std::move(command)),
      corpus_name_(std::move(corpus_name)),
      metric_(metric),
      expected_fingerprint_(expected_fingerprint) {}

ProcessShardWorker::~ProcessShardWorker() {
  // Closing the child's stdin is the shutdown signal: its serve loop sees
  // EOF, drains and exits; the wait reaps it so no zombie outlives a
  // router re-fit.
  if (write_stream_ != nullptr) std::fclose(write_stream_);
  if (read_stream_ != nullptr) std::fclose(read_stream_);
  if (child_pid_ > 0) {
    int status = 0;
    waitpid(child_pid_, &status, 0);
  }
}

void ProcessShardWorker::Spawn(const Dataset& corpus) {
  KNNSHAP_CHECK(child_pid_ == -1, "shard worker already spawned");
  if (command_.empty()) {
    throw std::runtime_error("shard worker: empty worker command");
  }
  if (corpus.HasLabels() && corpus.HasTargets()) {
    // The inline load wire carries one trailing column; a two-channel
    // corpus cannot round-trip content-identically.
    throw std::runtime_error(
        "shard worker: corpus with both labels and targets cannot be shipped");
  }
  IgnoreSigpipeForShardTransport();

  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (pipe(to_child) != 0) {
    throw std::runtime_error("shard worker: pipe() failed");
  }
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    throw std::runtime_error("shard worker: pipe() failed");
  }
  // Close-on-exec on every end: a LATER sibling's fork+exec must not
  // inherit this worker's pipe fds, or this child's stdin would never see
  // EOF (shutdown would deadlock in waitpid — every child holding every
  // other child's write end open). The child's dup2 onto stdin/stdout
  // below clears the flag on the two copies it actually uses.
  for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
    fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    throw std::runtime_error("shard worker: fork() failed");
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(command_.size() + 1);
    for (const std::string& arg : command_) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  child_pid_ = pid;
  write_stream_ = fdopen(to_child[1], "w");
  read_stream_ = fdopen(from_child[0], "r");
  if (write_stream_ == nullptr || read_stream_ == nullptr) {
    throw std::runtime_error("shard worker: fdopen() failed");
  }

  // Ship the corpus once. Feature floats widen to double and print as
  // %.17g, which round-trips bit-exactly back to the same float in the
  // child — so the child's independently computed content fingerprint must
  // equal the parent's, and any transport corruption is caught here.
  std::string response;
  if (!Exchange(wire::BuildInlineLoadRequest(corpus_name_, corpus).Dump(),
                &response)) {
    throw std::runtime_error("shard worker: load failed: " + Health().message());
  }
  JsonParseResult parsed = ParseJson(response);
  if (!parsed.ok() || !parsed.value.Get("ok").AsBool(false)) {
    throw std::runtime_error("shard worker: load rejected: " + response);
  }
  uint64_t echoed = 0;
  if (!wire::ParseHexFingerprint(parsed.value.Get("fingerprint").AsString(),
                                 &echoed) ||
      echoed != expected_fingerprint_) {
    throw std::runtime_error(
        "shard worker: corpus fingerprint mismatch after load (expected " +
        wire::FingerprintHex(expected_fingerprint_) + ", got " +
        parsed.value.Get("fingerprint").AsString() + ")");
  }
}

void ProcessShardWorker::Latch(Status status) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_.ok()) health_ = std::move(status);
}

Status ProcessShardWorker::Health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

bool ProcessShardWorker::Exchange(const std::string& line, std::string* response) {
  if (write_stream_ == nullptr || read_stream_ == nullptr) {
    Latch(Status::Unavailable("shard worker is not running"));
    return false;
  }
  if (std::fputs(line.c_str(), write_stream_) < 0 ||
      std::fputc('\n', write_stream_) == EOF ||
      std::fflush(write_stream_) != 0) {
    Latch(Status::Unavailable("shard worker pipe closed on write"));
    return false;
  }
  char* buf = nullptr;
  size_t cap = 0;
  const ssize_t len = getline(&buf, &cap, read_stream_);
  if (len < 0) {
    std::free(buf);
    Latch(Status::Unavailable("shard worker died (eof on response pipe)"));
    return false;
  }
  response->assign(buf, static_cast<size_t>(len));
  std::free(buf);
  while (!response->empty() &&
         (response->back() == '\n' || response->back() == '\r')) {
    response->pop_back();
  }
  return true;
}

bool ProcessShardWorker::Candidates(std::span<const float> query, size_t r,
                                    std::span<double> dists,
                                    std::vector<int>* run) {
  run->clear();
  if (!Health().ok()) return false;

  std::string line;
  if (!Exchange(
          wire::BuildCandidatesRequest(range_, corpus_name_, metric_, query, r)
              .Dump(),
          &line)) {
    return false;
  }
  Status status = wire::ParseCandidatesResponse(line, range_, dists, run);
  if (status.ok()) return true;
  // A propagated deadline leaves health OK (the router's own token is the
  // authority and is re-checked after the fan-out); anything else latches.
  if (status.code() != StatusCode::kDeadlineExceeded) Latch(std::move(status));
  return false;
}

}  // namespace knnshap
