// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// ShardWorker — one shard's candidate server, behind a topology-agnostic
// interface. A worker owns a planned ShardRange (shard_planner.h) and
// answers one kind of query: "distances + exact top-r candidate run over
// your rows". The router (sharded_valuator.h) merges the runs and feeds the
// recursion; because each worker's run is the exact restriction of the
// global (distance, index) order to its contiguous rows, the merge is
// bit-identical to the unsharded ranking.
//
// Two implementations:
//
//   * InProcessShardWorker — borrows the router's corpus/norms and computes
//     on the calling thread (the router fans out across the shared pool).
//     Zero copies, always healthy; the default topology.
//
//   * ProcessShardWorker — fork/exec's a worker command speaking the
//     existing JSONL serve protocol on stdin/stdout. The corpus is shipped
//     once at spawn via an inline `load` op (float -> %.17g JSON -> float
//     is lossless, so the child's content fingerprint must equal the
//     parent's — verified at load); each query is one `candidates` op
//     carrying the shard's content-addressed fingerprint, which the child
//     recomputes from its own digests and rejects on mismatch. A dead or
//     garbling child latches Health() non-OK; the router never merges a
//     partial fan-out (engine/valuator.h's Health contract).
//
// Failure semantics of Candidates(): `false` means "this fan-out produced
// no usable run". A false WITH Health() still OK is a propagated deadline
// (the child answered deadline_exceeded off the forwarded remaining-ms
// budget — the parent's own token is the authority and is re-checked by
// the router); any other false latches a non-OK Health first.

#ifndef KNNSHAP_SHARD_SHARD_WORKER_H_
#define KNNSHAP_SHARD_SHARD_WORKER_H_

#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <sys/types.h>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"
#include "shard/shard_planner.h"
#include "util/status.h"

namespace knnshap {

/// Installs the process-wide SIGPIPE ignore every shard transport needs
/// (a dead peer must surface as an EPIPE write error, not a signal).
/// Idempotent; called by the pipe and socket transports before first I/O.
void IgnoreSigpipeForShardTransport();

/// One shard's candidate server.
class ShardWorker {
 public:
  explicit ShardWorker(ShardRange range) : range_(range) {}
  virtual ~ShardWorker() = default;

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Computes distances from `query` to this shard's rows — written into
  /// the global row-indexed `dists` at [row_begin, row_end) — and appends
  /// the shard's exact top-min(r, Rows()) candidate row indices (global,
  /// ascending by (distance, index)) into *run (cleared first). Returns
  /// false when no usable run was produced (see header comment); an
  /// expired active CancelToken may leave *run empty with `true` — the
  /// router discards the whole query in that case.
  virtual bool Candidates(std::span<const float> query, size_t r,
                          std::span<double> dists, std::vector<int>* run) = 0;

  /// Liveness. Latched non-OK by process workers on child death/garbage;
  /// in-process workers are always OK.
  virtual Status Health() const { return Status::Ok(); }

  const ShardRange& Range() const { return range_; }

 protected:
  ShardRange range_;
};

/// Thread-per-shard worker: computes over a borrowed corpus slice on the
/// calling thread. `corpus` and `norms` must outlive the worker (the
/// router's fitted valuator owns both).
class InProcessShardWorker : public ShardWorker {
 public:
  InProcessShardWorker(ShardRange range, const Dataset* corpus,
                       const CorpusNorms* norms, Metric metric)
      : ShardWorker(range), corpus_(corpus), norms_(norms), metric_(metric) {}

  bool Candidates(std::span<const float> query, size_t r,
                  std::span<double> dists, std::vector<int>* run) override;

 private:
  const Dataset* corpus_;
  const CorpusNorms* norms_;
  Metric metric_;
};

/// Process-per-shard worker: a forked child running `command` (a knnshap
/// serve binary) on a private stdin/stdout pipe pair. Spawn() ships the
/// corpus and verifies the child's content fingerprint; Candidates()
/// exchanges one JSONL request/response per query. Not internally
/// synchronized — the router serializes fan-outs across its workers.
class ProcessShardWorker : public ShardWorker {
 public:
  /// `expected_fingerprint` is the parent corpus's combined content
  /// fingerprint; the child must echo it after the inline load or Spawn
  /// throws (std::runtime_error — the engine maps it to an internal-error
  /// response).
  ProcessShardWorker(ShardRange range, std::vector<std::string> command,
                     std::string corpus_name, Metric metric,
                     uint64_t expected_fingerprint);
  ~ProcessShardWorker() override;

  /// Forks the child and ships `corpus` via an inline load op. Must be
  /// called exactly once before Candidates. Throws std::runtime_error on
  /// spawn/load/fingerprint failure.
  void Spawn(const Dataset& corpus);

  bool Candidates(std::span<const float> query, size_t r,
                  std::span<double> dists, std::vector<int>* run) override;

  Status Health() const override;

 private:
  /// Writes one request line and reads one response line; false (with
  /// health latched) on a dead pipe. The JSONL protocol is strictly one
  /// response per request, so framing is a single getline.
  bool Exchange(const std::string& line, std::string* response);
  void Latch(Status status);

  std::vector<std::string> command_;
  std::string corpus_name_;
  Metric metric_;
  uint64_t expected_fingerprint_;

  pid_t child_pid_ = -1;
  std::FILE* write_stream_ = nullptr;  ///< parent -> child stdin
  std::FILE* read_stream_ = nullptr;   ///< child stdout -> parent

  mutable std::mutex health_mutex_;
  Status health_;
};

}  // namespace knnshap

#endif  // KNNSHAP_SHARD_SHARD_WORKER_H_
