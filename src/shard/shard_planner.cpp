// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "shard/shard_planner.h"

#include <algorithm>

#include "util/common.h"

namespace knnshap {

namespace {

void AddBlockSlice(Fnv64* hash, const std::vector<uint64_t>& blocks,
                   size_t block_begin, size_t block_end) {
  // Length-prefixed slice, so an empty label channel cannot alias a
  // feature digest of a differently-shaped corpus.
  if (blocks.empty()) {
    hash->AddSpan(std::span<const uint64_t>{});
    return;
  }
  hash->AddSpan(std::span<const uint64_t>(blocks.data() + block_begin,
                                          block_end - block_begin));
}

}  // namespace

uint64_t ShardFingerprint(const CorpusDigests& digests, size_t row_begin,
                          size_t row_end) {
  const size_t block_rows = digests.block_rows;
  KNNSHAP_CHECK(block_rows > 0, "digests without a block size");
  KNNSHAP_CHECK(row_begin < row_end && row_end <= digests.rows,
                "shard range out of bounds");
  KNNSHAP_CHECK(row_begin % block_rows == 0,
                "shard row_begin must be block-aligned");
  KNNSHAP_CHECK(row_end % block_rows == 0 || row_end == digests.rows,
                "shard row_end must be block-aligned or the corpus end");
  const size_t block_begin = row_begin / block_rows;
  const size_t block_end = (row_end + block_rows - 1) / block_rows;

  Fnv64 hash;
  hash.AddString("knnshap.shard");
  hash.Add(row_begin);
  hash.Add(row_end);
  hash.Add(digests.cols);
  hash.Add(block_rows);
  AddBlockSlice(&hash, digests.feature_blocks, block_begin, block_end);
  AddBlockSlice(&hash, digests.label_blocks, block_begin, block_end);
  AddBlockSlice(&hash, digests.target_blocks, block_begin, block_end);
  return hash.Digest();
}

std::vector<ShardRange> PlanShards(const CorpusDigests& digests,
                                   size_t shard_count) {
  KNNSHAP_CHECK(digests.rows > 0, "cannot shard an empty corpus");
  const size_t num_blocks = digests.NumBlocks();
  shard_count = std::clamp<size_t>(shard_count, 1, num_blocks);

  std::vector<ShardRange> plan;
  plan.reserve(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    // Balanced block partition: shard s covers blocks
    // [s*B/S, (s+1)*B/S) — every shard within one block of the others.
    const size_t block_begin = s * num_blocks / shard_count;
    const size_t block_end = (s + 1) * num_blocks / shard_count;
    ShardRange range;
    range.row_begin = block_begin * digests.block_rows;
    range.row_end = std::min(digests.rows, block_end * digests.block_rows);
    range.fingerprint = ShardFingerprint(digests, range.row_begin, range.row_end);
    plan.push_back(range);
  }
  return plan;
}

}  // namespace knnshap
