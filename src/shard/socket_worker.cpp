// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "shard/socket_worker.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "shard/wire.h"
#include "util/fault.h"
#include "util/json.h"

namespace knnshap {

namespace {

inline void Bump(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) counter->Add(n);
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketShardWorker
// ---------------------------------------------------------------------------

SocketShardWorker::SocketShardWorker(ShardRange range, Endpoint endpoint,
                                     std::string corpus_name, Metric metric,
                                     uint64_t expected_fingerprint,
                                     SocketWorkerOptions options,
                                     ShardTransportCounters counters)
    : ShardWorker(range),
      endpoint_(std::move(endpoint)),
      corpus_name_(std::move(corpus_name)),
      metric_(metric),
      expected_fingerprint_(expected_fingerprint),
      options_(options),
      counters_(counters) {}

SocketShardWorker::~SocketShardWorker() { CloseStreams(); }

void SocketShardWorker::CloseStreams() {
  // write_stream_ owns a dup of the socket fd; read_stream_ owns the fd
  // itself. Closing both fully shuts the connection down.
  if (write_stream_ != nullptr) std::fclose(write_stream_);
  if (read_stream_ != nullptr) std::fclose(read_stream_);
  write_stream_ = nullptr;
  read_stream_ = nullptr;
}

void SocketShardWorker::Latch(Status status) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_.ok()) health_ = std::move(status);
}

Status SocketShardWorker::Health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

Status SocketShardWorker::Connect(const Dataset& corpus,
                                  const CorpusDigests& digests) {
  if (read_stream_ != nullptr) return Health();
  IgnoreSigpipeForShardTransport();
  ScopedPhase span(ActiveTrace(), Phase::kShardConnect);

  // Bounded dial attempts with doubling backoff: a worker that is
  // restarting (or not yet up in a deploy race) gets a short grace window;
  // one that is truly gone fails fast enough for the replica layer to move
  // on.
  int fd = -1;
  std::string error;
  int backoff_ms = options_.backoff_initial_ms;
  const int attempts = options_.connect_attempts > 0 ? options_.connect_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    if (FaultInjectionEnabled() && Fault("shard_connect")) {
      error = "injected shard_connect fault";
      Bump(counters_.connect_failures);
      continue;
    }
    fd = DialTcp(endpoint_, options_.connect_timeout_ms, options_.io_timeout_ms,
                 &error);
    if (fd >= 0) break;
    Bump(counters_.connect_failures);
  }
  if (fd < 0) {
    Status status = Status::Unavailable("shard worker " + endpoint_.ToString() +
                                        " unreachable: " + error);
    Latch(status);
    return status;
  }
  read_stream_ = fdopen(fd, "r");
  const int write_fd = read_stream_ != nullptr ? dup(fd) : -1;
  write_stream_ = write_fd >= 0 ? fdopen(write_fd, "w") : nullptr;
  if (read_stream_ == nullptr || write_stream_ == nullptr) {
    if (read_stream_ == nullptr) close(fd);
    if (write_stream_ == nullptr && write_fd >= 0) close(write_fd);
    CloseStreams();
    Status status = Status::Unavailable("shard worker " + endpoint_.ToString() +
                                        ": fdopen() failed");
    Latch(status);
    return status;
  }

  // Corpus sync: ask what the worker holds, ship the difference. A worker
  // that kept the corpus across a router re-fit (the common warm case)
  // costs one digests round trip and zero rows; a mutated corpus costs
  // only its changed blocks; everything else falls back to the full
  // inline load.
  std::string line;
  if (!Exchange(wire::BuildDigestsRequest(corpus_name_).Dump(), &line)) {
    return Health();
  }
  JsonParseResult parsed = ParseJson(line);
  if (!parsed.ok()) {
    Status status = Status::Unavailable("shard worker " + endpoint_.ToString() +
                                        " sent an unparseable digests response");
    Latch(status);
    CloseStreams();
    return status;
  }
  wire::CorpusSyncPlan plan = wire::PlanCorpusSync(corpus, digests, parsed.value);
  if (plan.mode == wire::CorpusSyncPlan::Mode::kDelta) {
    if (!Exchange(wire::BuildDeltaLoadRequest(corpus_name_, corpus, digests,
                                              plan.blocks)
                      .Dump(),
                  &line)) {
      return Health();
    }
    parsed = ParseJson(line);
    if (!parsed.ok() || !parsed.value.Get("ok").AsBool(false)) {
      // A worker that rejects the delta (row-count drift it cannot splice,
      // an older binary without the op, an injected delta_apply fault) is
      // still usable — fall back to the always-correct full load.
      plan.mode = wire::CorpusSyncPlan::Mode::kFull;
    } else {
      Bump(counters_.delta_loads);
      Bump(counters_.delta_blocks, plan.blocks.size());
    }
  }
  if (plan.mode == wire::CorpusSyncPlan::Mode::kFull) {
    if (!Exchange(wire::BuildInlineLoadRequest(corpus_name_, corpus).Dump(),
                  &line)) {
      return Health();
    }
    parsed = ParseJson(line);
    if (!parsed.ok() || !parsed.value.Get("ok").AsBool(false)) {
      Status status = Status::Unavailable("shard worker " +
                                          endpoint_.ToString() +
                                          " rejected the corpus load: " + line);
      Latch(status);
      CloseStreams();
      return status;
    }
    Bump(counters_.full_loads);
  }

  // Every path ends fingerprint-verified: kNone verified inside
  // PlanCorpusSync (the digests response fingerprint equals ours), delta
  // and full loads via the echo below.
  if (plan.mode != wire::CorpusSyncPlan::Mode::kNone) {
    uint64_t echoed = 0;
    if (!wire::ParseHexFingerprint(parsed.value.Get("fingerprint").AsString(),
                                   &echoed) ||
        echoed != expected_fingerprint_) {
      Status status = Status::Error(
          StatusCode::kDataLoss,
          "shard worker " + endpoint_.ToString() +
              " corpus fingerprint mismatch after sync (expected " +
              wire::FingerprintHex(expected_fingerprint_) + ", got " +
              parsed.value.Get("fingerprint").AsString() + ")");
      Latch(status);
      CloseStreams();
      return status;
    }
  }
  Bump(counters_.connects);
  return Status::Ok();
}

bool SocketShardWorker::Exchange(const std::string& line,
                                 std::string* response) {
  if (write_stream_ == nullptr || read_stream_ == nullptr) {
    Latch(Status::Unavailable("shard worker " + endpoint_.ToString() +
                              " is not connected"));
    return false;
  }
  if (std::fputs(line.c_str(), write_stream_) < 0 ||
      std::fputc('\n', write_stream_) == EOF ||
      std::fflush(write_stream_) != 0) {
    Latch(Status::Unavailable("shard worker " + endpoint_.ToString() +
                              " closed the connection on write"));
    CloseStreams();
    return false;
  }
  if (FaultInjectionEnabled() && Fault("shard_read")) {
    Latch(Status::Unavailable("injected shard_read fault (" +
                              endpoint_.ToString() + ")"));
    CloseStreams();
    return false;
  }
  char* buf = nullptr;
  size_t cap = 0;
  const ssize_t len = getline(&buf, &cap, read_stream_);
  if (len < 0) {
    std::free(buf);
    // EOF or SO_RCVTIMEO expiry — either way this connection is done (a
    // timed-out response would desynchronize the one-line framing if we
    // kept reading).
    Latch(Status::Unavailable("shard worker " + endpoint_.ToString() +
                              " died or timed out on read"));
    CloseStreams();
    return false;
  }
  response->assign(buf, static_cast<size_t>(len));
  std::free(buf);
  while (!response->empty() &&
         (response->back() == '\n' || response->back() == '\r')) {
    response->pop_back();
  }
  return true;
}

bool SocketShardWorker::Candidates(std::span<const float> query, size_t r,
                                   std::span<double> dists,
                                   std::vector<int>* run) {
  run->clear();
  if (!Health().ok()) return false;
  std::string line;
  if (!Exchange(
          wire::BuildCandidatesRequest(range_, corpus_name_, metric_, query, r)
              .Dump(),
          &line)) {
    return false;
  }
  Status status = wire::ParseCandidatesResponse(line, range_, dists, run);
  if (status.ok()) return true;
  // Same contract as the pipe transport: a propagated deadline leaves
  // health OK (no failover — the router's token is the authority); any
  // other failure latches this connection dead.
  if (status.code() != StatusCode::kDeadlineExceeded) Latch(std::move(status));
  return false;
}

// ---------------------------------------------------------------------------
// ReplicaShardWorker
// ---------------------------------------------------------------------------

ReplicaShardWorker::ReplicaShardWorker(
    ShardRange range, std::vector<Endpoint> replicas, std::string corpus_name,
    Metric metric, uint64_t expected_fingerprint, SocketWorkerOptions options,
    ShardTransportCounters counters, const Dataset* corpus,
    const CorpusDigests* digests)
    : ShardWorker(range),
      replicas_(std::move(replicas)),
      corpus_name_(std::move(corpus_name)),
      metric_(metric),
      expected_fingerprint_(expected_fingerprint),
      options_(options),
      counters_(counters),
      corpus_(corpus),
      digests_(digests) {}

Status ReplicaShardWorker::Health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

size_t ReplicaShardWorker::DeadReplicas() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return dead_replicas_;
}

void ReplicaShardWorker::LatchAllDead(const Status& last_error) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_.ok()) {
    health_ = Status::Unavailable(
        "all " + std::to_string(replicas_.size()) + " replica(s) of shard [" +
        std::to_string(range_.row_begin) + ", " + std::to_string(range_.row_end) +
        ") are dead; last error: " + last_error.message());
  }
}

bool ReplicaShardWorker::EnsureActive() {
  Status last_error = Status::Unavailable("no replicas configured");
  while (active_ < replicas_.size()) {
    if (conn_ == nullptr) {
      conn_ = std::make_unique<SocketShardWorker>(
          range_, replicas_[active_], corpus_name_, metric_,
          expected_fingerprint_, options_, counters_);
      const Status status = conn_->Connect(*corpus_, *digests_);
      if (!status.ok()) {
        last_error = status;
        conn_.reset();
        {
          std::lock_guard<std::mutex> lock(health_mutex_);
          ++dead_replicas_;
        }
        ++active_;
        continue;
      }
    }
    return true;
  }
  LatchAllDead(last_error);
  return false;
}

void ReplicaShardWorker::Connect() {
  // Best-effort: a dead primary here just advances `active_`; total
  // failure latches Health and the router's fan-out answers unavailable.
  EnsureActive();
}

bool ReplicaShardWorker::Candidates(std::span<const float> query, size_t r,
                                    std::span<double> dists,
                                    std::vector<int>* run) {
  run->clear();
  if (!Health().ok()) return false;
  while (EnsureActive()) {
    if (conn_->Candidates(query, r, dists, run)) return true;
    if (conn_->Health().ok()) {
      // Propagated deadline — the replica is fine, the budget is not.
      // Retrying a sibling would only burn what little remains.
      return false;
    }
    // The active replica died mid-query. Fail over: mark it dead, connect
    // + sync the next one, retry the same query there. The candidate run
    // is a pure function of the fingerprint-verified corpus, so the
    // retried answer is byte-identical to what the dead replica would
    // have sent. (Rows the aborted attempt already wrote into `dists` are
    // harmless: the router only reads distances at indices named by the
    // merged runs.)
    ScopedPhase span(ActiveTrace(), Phase::kShardFailover);
    conn_.reset();
    {
      std::lock_guard<std::mutex> lock(health_mutex_);
      ++dead_replicas_;
    }
    ++active_;
    Bump(counters_.failovers);
    if (FaultInjectionEnabled() && Fault("shard_failover")) {
      // Chaos hook: the failover target is unreachable too — drive the
      // all-replicas-dead path deterministically.
      active_ = replicas_.size();
    }
  }
  return false;
}

}  // namespace knnshap
