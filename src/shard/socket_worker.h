// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The remote shard transport: TCP socket workers and the per-shard
// replica layer.
//
//   * SocketShardWorker — ONE connection to one remote `knnshap_serve
//     --shard-listen` worker. Construction is cheap; Connect() dials with
//     a bounded reconnect-with-backoff loop and a connect timeout, then
//     brings the worker's corpus up to date: it asks for the worker's
//     per-block content digests (`digests` op) and ships either nothing
//     (fingerprints match), a `load_delta` with exactly the changed
//     blocks, or a full inline `load` (unknown/incompatible worker
//     state). Every sync path ends with the worker echoing its
//     independently recomputed corpus fingerprint, which must equal the
//     router's — transport corruption and stale-worker states are caught
//     before any candidates flow. Candidates() is the same one-line
//     JSONL exchange as the pipe transport (shard/wire.h), under the
//     socket's SO_RCVTIMEO/SO_SNDTIMEO — a worker that stops answering
//     surfaces as a read timeout, not a hang.
//
//     A SocketShardWorker is one connection's lifetime: any transport or
//     protocol failure latches Health() non-OK and the object is
//     discarded (the replica layer reconnects with a *fresh* one, which
//     re-syncs — cheaply, via the delta path).
//
//   * ReplicaShardWorker — an ordered replica list for one shard. It
//     lazily connects the first live replica and fails over *within a
//     single Candidates() call*: a replica that dies mid-query is marked
//     dead (health latching), the next replica is connected + synced, and
//     the same query is retried there — the router's fan-out sees a
//     usable run and the response stays byte-identical (the candidate
//     run is a pure function of the corpus, which every replica verified
//     by fingerprint). Only when EVERY replica is dead does Health()
//     latch non-OK, and the router's existing never-merge-a-partial-
//     fan-out invariant answers `unavailable` + retry_after_ms; the next
//     request re-fits and re-dials every replica from scratch.
//
//     A propagated deadline (worker answered deadline_exceeded off the
//     forwarded budget) does NOT fail over: the router's own token is
//     the authority, and retrying on a sibling would just burn the rest
//     of the budget.
//
// Fault sites (util/fault.h): `shard_connect` fails a dial attempt,
// `shard_read` turns a response read into a transport error (mid-query
// failover), `shard_failover` abandons a failover (all-replicas-dead
// path). See src/serve/README.md, "Failure semantics".

#ifndef KNNSHAP_SHARD_SOCKET_WORKER_H_
#define KNNSHAP_SHARD_SOCKET_WORKER_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "knn/metric.h"
#include "obs/metrics.h"
#include "shard/shard_worker.h"
#include "util/fingerprint.h"
#include "util/net.h"
#include "util/status.h"

namespace knnshap {

/// Transport knobs, carried from the serve flags through the engine.
struct SocketWorkerOptions {
  int connect_timeout_ms = 2000;  ///< Per dial attempt.
  int io_timeout_ms = 30000;      ///< SO_RCVTIMEO/SO_SNDTIMEO; 0 = none.
  int connect_attempts = 3;       ///< Bounded dial retries per Connect().
  int backoff_initial_ms = 50;    ///< Sleep before retry; doubles each time.
};

/// Transport counters (obs registry; all nullable — obs-off servers pass
/// nulls and pay nothing).
struct ShardTransportCounters {
  Counter* connects = nullptr;          ///< Successful dials + syncs.
  Counter* connect_failures = nullptr;  ///< Failed dial attempts.
  Counter* failovers = nullptr;         ///< Mid-query replica switches.
  Counter* full_loads = nullptr;        ///< Corpus syncs that shipped everything.
  Counter* delta_loads = nullptr;       ///< Corpus syncs that shipped a delta.
  Counter* delta_blocks = nullptr;      ///< Blocks shipped across all deltas.
};

/// One TCP connection to one remote shard worker.
class SocketShardWorker : public ShardWorker {
 public:
  SocketShardWorker(ShardRange range, Endpoint endpoint,
                    std::string corpus_name, Metric metric,
                    uint64_t expected_fingerprint, SocketWorkerOptions options,
                    ShardTransportCounters counters);
  ~SocketShardWorker() override;

  /// Dial (bounded attempts + backoff) and sync the corpus (digests ->
  /// none/delta/full, fingerprint-verified). Must succeed before
  /// Candidates; a non-OK return leaves the worker dead (discard it).
  Status Connect(const Dataset& corpus, const CorpusDigests& digests);

  bool Candidates(std::span<const float> query, size_t r,
                  std::span<double> dists, std::vector<int>* run) override;

  Status Health() const override;

  const Endpoint& RemoteEndpoint() const { return endpoint_; }

 private:
  bool Exchange(const std::string& line, std::string* response);
  void Latch(Status status);
  void CloseStreams();

  Endpoint endpoint_;
  std::string corpus_name_;
  Metric metric_;
  uint64_t expected_fingerprint_;
  SocketWorkerOptions options_;
  ShardTransportCounters counters_;

  std::FILE* write_stream_ = nullptr;
  std::FILE* read_stream_ = nullptr;

  mutable std::mutex health_mutex_;
  Status health_;
};

/// Ordered replica list for one shard, with health latching and
/// mid-query failover. The data plane (Candidates/Connect) is NOT
/// internally synchronized — the router serializes remote fan-outs, same
/// as process mode; Health() alone is thread-safe (the engine reads it
/// concurrently).
class ReplicaShardWorker : public ShardWorker {
 public:
  /// `corpus` and `digests` must outlive the worker (the router's fitted
  /// valuator owns both); replicas are tried strictly in order.
  ReplicaShardWorker(ShardRange range, std::vector<Endpoint> replicas,
                     std::string corpus_name, Metric metric,
                     uint64_t expected_fingerprint,
                     SocketWorkerOptions options,
                     ShardTransportCounters counters, const Dataset* corpus,
                     const CorpusDigests* digests);

  /// Best-effort eager connect of the first live replica (fit-time). A
  /// failure is not fatal — Candidates() retries the remaining replicas;
  /// only all-dead latches Health().
  void Connect();

  bool Candidates(std::span<const float> query, size_t r,
                  std::span<double> dists, std::vector<int>* run) override;

  Status Health() const override;

  /// Replicas latched dead so far (stats/test introspection).
  size_t DeadReplicas() const;

 private:
  /// Ensures conn_ points at a connected, synced replica; advances past
  /// dead ones. False (with Health latched) when every replica is dead.
  bool EnsureActive();

  void LatchAllDead(const Status& last_error);

  std::vector<Endpoint> replicas_;
  std::string corpus_name_;
  Metric metric_;
  uint64_t expected_fingerprint_;
  SocketWorkerOptions options_;
  ShardTransportCounters counters_;
  const Dataset* corpus_;
  const CorpusDigests* digests_;

  size_t active_ = 0;  ///< Index of the replica conn_ speaks to.
  std::unique_ptr<SocketShardWorker> conn_;

  mutable std::mutex health_mutex_;
  Status health_;
  size_t dead_replicas_ = 0;
};

}  // namespace knnshap

#endif  // KNNSHAP_SHARD_SOCKET_WORKER_H_
