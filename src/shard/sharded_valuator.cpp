// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "shard/sharded_valuator.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include <stdexcept>

#include "core/corrected_knn_shapley.h"
#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"  // KStar, TruncatedShapleyFromNeighbors
#include "knn/neighbors.h"
#include "knn/selection.h"
#include "obs/trace.h"
#include "shard/socket_worker.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/net.h"
#include "util/thread_pool.h"

namespace knnshap {

bool ShardedValuatorSupports(const std::string& method) {
  return method == "exact" || method == "exact-corrected" ||
         method == "weighted-fast" || method == "truncated";
}

ShardedValuator::ShardedValuator(ValuatorParams params, std::string method,
                                 ShardedValuatorSpec spec)
    : Valuator(std::move(params)),
      method_(std::move(method)),
      spec_(std::move(spec)) {
  if (method_ == "exact") {
    kind_ = Kind::kExact;
  } else if (method_ == "exact-corrected") {
    kind_ = Kind::kCorrected;
  } else if (method_ == "truncated") {
    kind_ = Kind::kTruncated;
  } else {
    KNNSHAP_CHECK(method_ == "weighted-fast",
                  "no sharded implementation for method '" + method_ + "'");
    kind_ = Kind::kWeightedFast;
  }
}

void ShardedValuator::OnFit() {
  const Dataset& train = Train();
  KNNSHAP_CHECK(train.HasLabels(), method_ + ": labeled corpus required");
  digests_ = spec_.train_digests;
  if (digests_ == nullptr) {
    // No maintained digests (engine used outside the serve layer): one
    // full hash here buys content-addressed shard identity all the same.
    digests_ =
        std::make_shared<const CorpusDigests>(ComputeCorpusDigests(train));
  }
  const CorpusDigests& digests = *digests_;
  plan_ = PlanShards(digests,
                     static_cast<size_t>(std::max(spec_.shard_count, 1)));
  norms_ = NormsForMetric(train.features, params_.metric);
  if (kind_ == Kind::kWeightedFast) {
    coalition_ = std::make_unique<WknnCoalitionWeights>(
        static_cast<int>(train.Size()), params_.k);
  }
  workers_.clear();
  workers_.reserve(plan_.size());
  if (!spec_.remote_replicas.empty()) {
    // Remote sockets: one ReplicaShardWorker per planned shard, each with
    // its ordered replica list. Endpoint parse errors throw (bad flag —
    // the engine answers a structured internal error); dial failures do
    // NOT — the eager Connect below is best-effort, so an all-dead
    // topology surfaces as unavailable + retry_after_ms through the
    // normal fan-out health path instead of poisoning the fit.
    if (spec_.remote_replicas.size() < plan_.size()) {
      throw std::runtime_error(
          "sharded fit: " + std::to_string(plan_.size()) +
          " planned shards but only " +
          std::to_string(spec_.remote_replicas.size()) +
          " remote replica group(s)");
    }
    SocketWorkerOptions socket_options;
    socket_options.connect_timeout_ms = spec_.connect_timeout_ms;
    socket_options.io_timeout_ms = spec_.io_timeout_ms;
    socket_options.connect_attempts = spec_.connect_attempts;
    ShardTransportCounters counters;
    if (spec_.metrics != nullptr) {
      counters.connects =
          spec_.metrics->GetCounter("knnshap_shard_connects_total");
      counters.connect_failures =
          spec_.metrics->GetCounter("knnshap_shard_connect_failures_total");
      counters.failovers =
          spec_.metrics->GetCounter("knnshap_shard_failovers_total");
      counters.full_loads =
          spec_.metrics->GetCounter("knnshap_shard_full_loads_total");
      counters.delta_loads =
          spec_.metrics->GetCounter("knnshap_shard_delta_loads_total");
      counters.delta_blocks =
          spec_.metrics->GetCounter("knnshap_shard_delta_blocks_total");
    }
    const uint64_t fingerprint = digests.Combined();
    for (size_t s = 0; s < plan_.size(); ++s) {
      std::vector<Endpoint> replicas;
      replicas.reserve(spec_.remote_replicas[s].size());
      for (const std::string& spec : spec_.remote_replicas[s]) {
        Endpoint endpoint;
        std::string error;
        if (!ParseEndpoint(spec, &endpoint, &error, "127.0.0.1")) {
          throw std::runtime_error("sharded fit: bad replica endpoint '" +
                                   spec + "': " + error);
        }
        replicas.push_back(std::move(endpoint));
      }
      if (replicas.empty()) {
        throw std::runtime_error("sharded fit: shard " + std::to_string(s) +
                                 " has no replica endpoints");
      }
      auto worker = std::make_unique<ReplicaShardWorker>(
          plan_[s], std::move(replicas), spec_.corpus_name, params_.metric,
          fingerprint, socket_options, counters, &train, digests_.get());
      worker->Connect();
      workers_.push_back(std::move(worker));
    }
  } else if (spec_.process) {
    // Spawn failures (bad command, dead pipe, fingerprint mismatch after
    // the inline load) throw — the engine turns that into a structured
    // internal-error response and retires the fit slot.
    const uint64_t fingerprint = digests.Combined();
    for (const ShardRange& range : plan_) {
      auto worker = std::make_unique<ProcessShardWorker>(
          range, spec_.worker_command, spec_.corpus_name, params_.metric,
          fingerprint);
      worker->Spawn(train);
      workers_.push_back(std::move(worker));
    }
  } else {
    for (const ShardRange& range : plan_) {
      workers_.push_back(std::make_unique<InProcessShardWorker>(
          range, &train, &norms_, params_.metric));
    }
  }
}

Status ShardedValuator::Health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

bool ShardedValuator::FanOut(std::span<const float> query, size_t r,
                             std::span<double> dists,
                             std::vector<std::vector<int>>* runs) const {
  runs->resize(workers_.size());
  if (!spec_.process && spec_.remote_replicas.empty()) {
    // Thread-per-shard: the caller helps drain shard indices alongside
    // pool workers (ParallelForHelping is safe from pool threads, which is
    // where the engine runs ValueOne). The active token is re-established
    // per helper, same as the block-parallel distance path.
    const CancelToken* token = ActiveCancelToken();
    std::atomic<bool> failed{false};
    ThreadPool::Shared().ParallelForHelping(workers_.size(), [&](size_t s) {
      CancelActivation activation(token);
      if (!workers_[s]->Candidates(query, r, dists, &(*runs)[s])) {
        failed.store(true, std::memory_order_relaxed);
      }
    });
    return !failed.load(std::memory_order_relaxed);
  }
  // Process/remote mode: each worker's pipe pair / socket is a
  // single-lane channel and queries arrive concurrently from the pool, so
  // fan-outs serialize. (Serialization also keeps replica failover sane:
  // at most one query is ever in flight when a replica dies.)
  std::lock_guard<std::mutex> lock(fan_out_mutex_);
  for (size_t s = 0; s < workers_.size(); ++s) {
    if (!workers_[s]->Candidates(query, r, dists, &(*runs)[s])) return false;
  }
  return true;
}

std::vector<double> ShardedValuator::ValueOne(const Dataset& test,
                                              size_t row) const {
  const Dataset& train = Train();
  const size_t n = train.Size();
  const int test_label = test.HasLabels() ? test.labels[row] : 0;
  const bool truncated = params_.approx_error > 0.0;

  // The corrected N-1 < K regime is labels-only: the unsharded path runs
  // no distance pass there, so neither does the router (no fan-out spans,
  // no worker traffic — bit- and trace-identical).
  if (kind_ == Kind::kCorrected && truncated &&
      static_cast<int>(n) - 1 < params_.k) {
    return TruncatedCorrectedKnnShapleyFromOrder({}, train.labels, test_label,
                                                 params_.k);
  }

  // Fan-out depth: the exact prefix length the unsharded truncated path
  // would retrieve, or the full corpus.
  size_t r = n;
  if (kind_ == Kind::kTruncated) {
    r = std::min(static_cast<size_t>(KStar(params_.k, params_.epsilon)), n);
  } else if (truncated && kind_ == Kind::kExact) {
    r = TruncatedExactEffectiveRank(
        static_cast<size_t>(KStar(params_.k, params_.approx_error)), n,
        params_.k);
  } else if (truncated && kind_ == Kind::kCorrected) {
    r = TruncatedCorrectedEffectiveRank(
        static_cast<size_t>(KStar(params_.k, params_.approx_error)), n,
        params_.k);
  }
  const bool full = r >= n;
  if (full) r = n;

  thread_local std::vector<double> dists;
  thread_local std::vector<std::vector<int>> runs;
  thread_local std::vector<int> order;
  dists.resize(n);

  const std::span<const float> query = test.features.Row(row);
  bool fanned_out;
  {
    ScopedPhase span(Phase::kShardFanout);
    fanned_out = FanOut(query, r, dists, &runs);
  }
  // A deadline that fired anywhere in the fan-out (local poll or a child's
  // propagated deadline_exceeded, whose token can never fire earlier than
  // ours) comes back here: right-sized zeros, discarded by the engine's
  // post-run Expired() check — never a partial merge.
  if (CancelRequested()) return std::vector<double>(n, 0.0);
  if (!fanned_out) {
    // Worker failure on a live request: latch the first worker's status
    // (Unavailable/Internal) and return empty — the engine skips empty
    // merges, reads Health() after the run, evicts this fitted entry and
    // answers the status instead of values.
    Status latched = Status::Unavailable("shard fan-out failed");
    for (const auto& worker : workers_) {
      if (Status health = worker->Health(); !health.ok()) {
        latched = std::move(health);
        break;
      }
    }
    std::lock_guard<std::mutex> lock(health_mutex_);
    if (health_.ok()) health_ = std::move(latched);
    return {};
  }

  {
    ScopedPhase span(Phase::kShardMerge);
    MergeSortedCandidateRuns(dists, runs, r, &order);
  }

  switch (kind_) {
    case Kind::kExact:
      return full ? ExactKnnShapleyFromOrder(order, train.labels, test_label,
                                             params_.k)
                  : TruncatedExactKnnShapleyFromOrder(order, train.labels,
                                                      test_label, params_.k, n);
    case Kind::kCorrected:
      return full ? CorrectedKnnShapleyFromOrder(order, train.labels,
                                                 test_label, params_.k)
                  : TruncatedCorrectedKnnShapleyFromOrder(
                        order, train.labels, test_label, params_.k);
    case Kind::kTruncated: {
      // The merged prefix is the exact global top-r in the same
      // (distance, index) order the unsharded kd-tree retrieval returns,
      // so the Theorem-2 recursion sees identical neighbor/label inputs
      // and the rank scatter produces identical bytes. (The recursion
      // consumes only indices and labels; the distances ride along for
      // interface parity.)
      std::vector<Neighbor> neighbors;
      neighbors.reserve(order.size());
      for (int i : order) {
        neighbors.push_back(
            Neighbor{i, dists[static_cast<size_t>(i)]});
      }
      const std::vector<double> by_rank = TruncatedShapleyFromNeighbors(
          train, neighbors, test_label, params_.k,
          KStar(params_.k, params_.epsilon));
      std::vector<double> sv(n, 0.0);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        sv[static_cast<size_t>(neighbors[i].index)] = by_rank[i];
      }
      return sv;
    }
    case Kind::kWeightedFast: {
      WknnShapleyOptions options;
      options.k = params_.k;
      options.weights = params_.weights;
      options.metric = params_.metric;
      options.weight_bits = params_.weight_bits;
      options.approx_error = params_.approx_error;
      // The raw double distances crossed the shard boundary losslessly
      // (%.17g in process mode), so the kernel weights — functions of the
      // exact doubles — match the unsharded context bit for bit.
      WknnQueryContext context = MakeWknnQueryContextFromRanking(
          order, dists, train.labels, test_label, options);
      return WknnShapleyFromContext(context, options, coalition_.get());
    }
  }
  KNNSHAP_CHECK(false, "unreachable");
}

std::unique_ptr<Valuator> MakeShardedValuator(const std::string& method,
                                              const ValuatorParams& params,
                                              ShardedValuatorSpec spec) {
  if (!ShardedValuatorSupports(method)) return nullptr;
  return std::make_unique<ShardedValuator>(params, method, std::move(spec));
}

}  // namespace knnshap
