// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "shard/sharded_valuator.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "core/corrected_knn_shapley.h"
#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"  // KStar
#include "knn/selection.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

bool ShardedValuatorSupports(const std::string& method) {
  return method == "exact" || method == "exact-corrected" ||
         method == "weighted-fast";
}

ShardedValuator::ShardedValuator(ValuatorParams params, std::string method,
                                 ShardedValuatorSpec spec)
    : Valuator(std::move(params)),
      method_(std::move(method)),
      spec_(std::move(spec)) {
  if (method_ == "exact") {
    kind_ = Kind::kExact;
  } else if (method_ == "exact-corrected") {
    kind_ = Kind::kCorrected;
  } else {
    KNNSHAP_CHECK(method_ == "weighted-fast",
                  "no sharded implementation for method '" + method_ + "'");
    kind_ = Kind::kWeightedFast;
  }
}

void ShardedValuator::OnFit() {
  const Dataset& train = Train();
  KNNSHAP_CHECK(train.HasLabels(), method_ + ": labeled corpus required");
  std::shared_ptr<const CorpusDigests> digests = spec_.train_digests;
  if (digests == nullptr) {
    // No maintained digests (engine used outside the serve layer): one
    // full hash here buys content-addressed shard identity all the same.
    digests = std::make_shared<const CorpusDigests>(ComputeCorpusDigests(train));
  }
  plan_ = PlanShards(*digests,
                     static_cast<size_t>(std::max(spec_.shard_count, 1)));
  norms_ = NormsForMetric(train.features, params_.metric);
  if (kind_ == Kind::kWeightedFast) {
    coalition_ = std::make_unique<WknnCoalitionWeights>(
        static_cast<int>(train.Size()), params_.k);
  }
  workers_.clear();
  workers_.reserve(plan_.size());
  if (spec_.process) {
    // Spawn failures (bad command, dead pipe, fingerprint mismatch after
    // the inline load) throw — the engine turns that into a structured
    // internal-error response and retires the fit slot.
    const uint64_t fingerprint = digests->Combined();
    for (const ShardRange& range : plan_) {
      auto worker = std::make_unique<ProcessShardWorker>(
          range, spec_.worker_command, spec_.corpus_name, params_.metric,
          fingerprint);
      worker->Spawn(train);
      workers_.push_back(std::move(worker));
    }
  } else {
    for (const ShardRange& range : plan_) {
      workers_.push_back(std::make_unique<InProcessShardWorker>(
          range, &train, &norms_, params_.metric));
    }
  }
}

Status ShardedValuator::Health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_;
}

bool ShardedValuator::FanOut(std::span<const float> query, size_t r,
                             std::span<double> dists,
                             std::vector<std::vector<int>>* runs) const {
  runs->resize(workers_.size());
  if (!spec_.process) {
    // Thread-per-shard: the caller helps drain shard indices alongside
    // pool workers (ParallelForHelping is safe from pool threads, which is
    // where the engine runs ValueOne). The active token is re-established
    // per helper, same as the block-parallel distance path.
    const CancelToken* token = ActiveCancelToken();
    std::atomic<bool> failed{false};
    ThreadPool::Shared().ParallelForHelping(workers_.size(), [&](size_t s) {
      CancelActivation activation(token);
      if (!workers_[s]->Candidates(query, r, dists, &(*runs)[s])) {
        failed.store(true, std::memory_order_relaxed);
      }
    });
    return !failed.load(std::memory_order_relaxed);
  }
  // Process mode: each worker's pipe pair is a single-lane channel and
  // queries arrive concurrently from the pool, so fan-outs serialize.
  std::lock_guard<std::mutex> lock(fan_out_mutex_);
  for (size_t s = 0; s < workers_.size(); ++s) {
    if (!workers_[s]->Candidates(query, r, dists, &(*runs)[s])) return false;
  }
  return true;
}

std::vector<double> ShardedValuator::ValueOne(const Dataset& test,
                                              size_t row) const {
  const Dataset& train = Train();
  const size_t n = train.Size();
  const int test_label = test.HasLabels() ? test.labels[row] : 0;
  const bool truncated = params_.approx_error > 0.0;

  // The corrected N-1 < K regime is labels-only: the unsharded path runs
  // no distance pass there, so neither does the router (no fan-out spans,
  // no worker traffic — bit- and trace-identical).
  if (kind_ == Kind::kCorrected && truncated &&
      static_cast<int>(n) - 1 < params_.k) {
    return TruncatedCorrectedKnnShapleyFromOrder({}, train.labels, test_label,
                                                 params_.k);
  }

  // Fan-out depth: the exact prefix length the unsharded truncated path
  // would retrieve, or the full corpus.
  size_t r = n;
  if (truncated && kind_ == Kind::kExact) {
    r = TruncatedExactEffectiveRank(
        static_cast<size_t>(KStar(params_.k, params_.approx_error)), n,
        params_.k);
  } else if (truncated && kind_ == Kind::kCorrected) {
    r = TruncatedCorrectedEffectiveRank(
        static_cast<size_t>(KStar(params_.k, params_.approx_error)), n,
        params_.k);
  }
  const bool full = r >= n;
  if (full) r = n;

  thread_local std::vector<double> dists;
  thread_local std::vector<std::vector<int>> runs;
  thread_local std::vector<int> order;
  dists.resize(n);

  const std::span<const float> query = test.features.Row(row);
  bool fanned_out;
  {
    ScopedPhase span(Phase::kShardFanout);
    fanned_out = FanOut(query, r, dists, &runs);
  }
  // A deadline that fired anywhere in the fan-out (local poll or a child's
  // propagated deadline_exceeded, whose token can never fire earlier than
  // ours) comes back here: right-sized zeros, discarded by the engine's
  // post-run Expired() check — never a partial merge.
  if (CancelRequested()) return std::vector<double>(n, 0.0);
  if (!fanned_out) {
    // Worker failure on a live request: latch the first worker's status
    // (Unavailable/Internal) and return empty — the engine skips empty
    // merges, reads Health() after the run, evicts this fitted entry and
    // answers the status instead of values.
    Status latched = Status::Unavailable("shard fan-out failed");
    for (const auto& worker : workers_) {
      if (Status health = worker->Health(); !health.ok()) {
        latched = std::move(health);
        break;
      }
    }
    std::lock_guard<std::mutex> lock(health_mutex_);
    if (health_.ok()) health_ = std::move(latched);
    return {};
  }

  {
    ScopedPhase span(Phase::kShardMerge);
    MergeSortedCandidateRuns(dists, runs, r, &order);
  }

  switch (kind_) {
    case Kind::kExact:
      return full ? ExactKnnShapleyFromOrder(order, train.labels, test_label,
                                             params_.k)
                  : TruncatedExactKnnShapleyFromOrder(order, train.labels,
                                                      test_label, params_.k, n);
    case Kind::kCorrected:
      return full ? CorrectedKnnShapleyFromOrder(order, train.labels,
                                                 test_label, params_.k)
                  : TruncatedCorrectedKnnShapleyFromOrder(
                        order, train.labels, test_label, params_.k);
    case Kind::kWeightedFast: {
      WknnShapleyOptions options;
      options.k = params_.k;
      options.weights = params_.weights;
      options.metric = params_.metric;
      options.weight_bits = params_.weight_bits;
      options.approx_error = params_.approx_error;
      // The raw double distances crossed the shard boundary losslessly
      // (%.17g in process mode), so the kernel weights — functions of the
      // exact doubles — match the unsharded context bit for bit.
      WknnQueryContext context = MakeWknnQueryContextFromRanking(
          order, dists, train.labels, test_label, options);
      return WknnShapleyFromContext(context, options, coalition_.get());
    }
  }
  KNNSHAP_CHECK(false, "unreachable");
}

std::unique_ptr<Valuator> MakeShardedValuator(const std::string& method,
                                              const ValuatorParams& params,
                                              ShardedValuatorSpec spec) {
  if (!ShardedValuatorSupports(method)) return nullptr;
  return std::make_unique<ShardedValuator>(params, method, std::move(spec));
}

}  // namespace knnshap
