// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/common.h"

namespace knnshap {

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

void LogisticRegression::Fit(const Dataset& train) {
  std::vector<int> all(train.Size());
  std::iota(all.begin(), all.end(), 0);
  FitSubset(train, all);
}

void LogisticRegression::FitSubset(const Dataset& train, std::span<const int> rows) {
  KNNSHAP_CHECK(train.HasLabels(), "labels required");
  TrainOn(train, rows);
}

void LogisticRegression::TrainOn(const Dataset& train, std::span<const int> rows) {
  dim_ = train.Dim();
  num_classes_ = options_.num_classes;
  if (num_classes_ == 0) {
    int max_label = 0;
    for (int label : train.labels) max_label = std::max(max_label, label);
    num_classes_ = max_label + 1;
  }
  weights_.assign(static_cast<size_t>(num_classes_) * dim_, 0.0);
  biases_.assign(static_cast<size_t>(num_classes_), 0.0);
  if (rows.empty()) return;

  const double inv_n = 1.0 / static_cast<double>(rows.size());
  std::vector<double> grad_w(weights_.size());
  std::vector<double> grad_b(biases_.size());
  std::vector<double> probs(static_cast<size_t>(num_classes_));

  for (int iter = 0; iter < options_.iterations; ++iter) {
    std::fill(grad_w.begin(), grad_w.end(), 0.0);
    std::fill(grad_b.begin(), grad_b.end(), 0.0);
    for (int row : rows) {
      auto x = train.features.Row(static_cast<size_t>(row));
      // Softmax with max-logit stabilization.
      double max_logit = -1e300;
      for (int c = 0; c < num_classes_; ++c) {
        double z = biases_[static_cast<size_t>(c)];
        const double* w = &weights_[static_cast<size_t>(c) * dim_];
        for (size_t d = 0; d < dim_; ++d) z += w[d] * static_cast<double>(x[d]);
        probs[static_cast<size_t>(c)] = z;
        max_logit = std::max(max_logit, z);
      }
      double denom = 0.0;
      for (int c = 0; c < num_classes_; ++c) {
        probs[static_cast<size_t>(c)] = std::exp(probs[static_cast<size_t>(c)] - max_logit);
        denom += probs[static_cast<size_t>(c)];
      }
      for (int c = 0; c < num_classes_; ++c) probs[static_cast<size_t>(c)] /= denom;

      int y = train.labels[static_cast<size_t>(row)];
      for (int c = 0; c < num_classes_; ++c) {
        double err = probs[static_cast<size_t>(c)] - (c == y ? 1.0 : 0.0);
        double* gw = &grad_w[static_cast<size_t>(c) * dim_];
        for (size_t d = 0; d < dim_; ++d) gw[d] += err * static_cast<double>(x[d]);
        grad_b[static_cast<size_t>(c)] += err;
      }
    }
    for (size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] -= options_.learning_rate *
                     (grad_w[i] * inv_n + options_.l2 * weights_[i]);
    }
    for (size_t c = 0; c < biases_.size(); ++c) {
      biases_[c] -= options_.learning_rate * grad_b[c] * inv_n;
    }
  }
}

std::vector<double> LogisticRegression::Logits(std::span<const float> x) const {
  KNNSHAP_CHECK(x.size() == dim_, "dimension mismatch");
  std::vector<double> logits(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    double z = biases_[static_cast<size_t>(c)];
    const double* w = &weights_[static_cast<size_t>(c) * dim_];
    for (size_t d = 0; d < dim_; ++d) z += w[d] * static_cast<double>(x[d]);
    logits[static_cast<size_t>(c)] = z;
  }
  return logits;
}

int LogisticRegression::Predict(std::span<const float> x) const {
  auto logits = Logits(x);
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                          logits.begin());
}

std::vector<double> LogisticRegression::PredictProba(std::span<const float> x) const {
  auto logits = Logits(x);
  double max_logit = *std::max_element(logits.begin(), logits.end());
  double denom = 0.0;
  for (auto& z : logits) {
    z = std::exp(z - max_logit);
    denom += z;
  }
  for (auto& z : logits) z /= denom;
  return logits;
}

double LogisticRegression::Accuracy(const Dataset& test) const {
  KNNSHAP_CHECK(test.HasLabels(), "labels required");
  if (test.Size() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < test.Size(); ++i) {
    if (Predict(test.features.Row(i)) == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.Size());
}

}  // namespace knnshap
