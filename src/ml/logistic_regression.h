// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Multinomial logistic regression (softmax) trained by batch gradient
// descent. The paper uses logistic regression twice: as the accuracy
// comparison for KNN on deep features (Fig 8) and as the target model
// whose (Monte-Carlo) Shapley values the KNN SV is shown to track (Fig 16
// and Sec 7's surrogate argument).

#ifndef KNNSHAP_ML_LOGISTIC_REGRESSION_H_
#define KNNSHAP_ML_LOGISTIC_REGRESSION_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"

namespace knnshap {

/// Training hyperparameters.
struct LogisticRegressionOptions {
  int num_classes = 0;       ///< 0 = infer from the training labels.
  int iterations = 200;      ///< Gradient steps (full batch).
  double learning_rate = 0.5;
  double l2 = 1e-4;          ///< L2 regularization strength.
};

/// Softmax classifier with per-class weight vectors and biases.
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  /// Trains on a labeled dataset; any prior state is discarded. Training
  /// on an empty dataset leaves the model predicting class 0.
  void Fit(const Dataset& train);

  /// Fits on an explicit row subset of `train` (the "retrain on S" step of
  /// subset-utility evaluation).
  void FitSubset(const Dataset& train, std::span<const int> rows);

  /// Most probable class of a feature vector.
  int Predict(std::span<const float> x) const;

  /// Class probabilities (softmax output).
  std::vector<double> PredictProba(std::span<const float> x) const;

  /// Mean accuracy over a labeled dataset.
  double Accuracy(const Dataset& test) const;

  int NumClasses() const { return num_classes_; }

 private:
  void TrainOn(const Dataset& train, std::span<const int> rows);
  std::vector<double> Logits(std::span<const float> x) const;

  LogisticRegressionOptions options_;
  int num_classes_ = 0;
  size_t dim_ = 0;
  std::vector<double> weights_;  // num_classes x dim, row-major
  std::vector<double> biases_;   // num_classes
};

}  // namespace knnshap

#endif  // KNNSHAP_ML_LOGISTIC_REGRESSION_H_
