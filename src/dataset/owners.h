// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Ownership maps for the multi-data-per-curator setting (Sec 4 / Appendix
// E.3): each of M sellers owns one or more training rows, and valuation is
// per seller rather than per row.

#ifndef KNNSHAP_DATASET_OWNERS_H_
#define KNNSHAP_DATASET_OWNERS_H_

#include <vector>

#include "util/random.h"

namespace knnshap {

/// Maps training rows to seller ids in [0, NumSellers).
class OwnerAssignment {
 public:
  /// owner_of[i] = seller owning row i. Seller ids must be dense 0..M-1.
  explicit OwnerAssignment(std::vector<int> owner_of);

  int NumSellers() const { return num_sellers_; }
  size_t NumRows() const { return owner_of_.size(); }
  int OwnerOf(int row) const { return owner_of_[static_cast<size_t>(row)]; }

  /// Rows owned by a seller.
  const std::vector<int>& RowsOf(int seller) const {
    return rows_of_[static_cast<size_t>(seller)];
  }

  /// Every row of every seller in `sellers`, concatenated.
  std::vector<int> RowsOfSellers(const std::vector<int>& sellers) const;

  /// Deals rows round-robin to `num_sellers` sellers.
  static OwnerAssignment RoundRobin(size_t num_rows, int num_sellers);

  /// Assigns each row to a uniformly random seller (each seller is
  /// guaranteed at least one row when num_rows >= num_sellers).
  static OwnerAssignment Random(size_t num_rows, int num_sellers, Rng* rng);

 private:
  std::vector<int> owner_of_;
  std::vector<std::vector<int>> rows_of_;
  int num_sellers_ = 0;
};

}  // namespace knnshap

#endif  // KNNSHAP_DATASET_OWNERS_H_
