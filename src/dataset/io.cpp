// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "dataset/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace knnshap {

namespace {

// Splits a CSV line on commas (no quoting support: feature dumps are plain
// numeric tables).
std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

bool ParseDouble(const std::string& text, double* out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  if (end == begin) return false;
  while (*end == ' ' || *end == '\r' || *end == '\t') ++end;
  return *end == '\0';
}

}  // namespace

CsvLoadResult LoadCsvDataset(const std::string& path, CsvTarget target) {
  CsvLoadResult result;
  std::ifstream in(path);
  if (!in.is_open()) {
    result.status = Status::NotFound("cannot open " + path);
    return result;
  }
  result.data.name = path;

  std::string line;
  bool first_line = true;
  size_t expected_cells = 0;
  std::vector<float> features;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = SplitCells(line);
    if (first_line) {
      // Header detection: if any cell fails to parse as a number, treat the
      // first line as a header.
      bool numeric = true;
      double ignored;
      for (const auto& cell : cells) numeric = numeric && ParseDouble(cell, &ignored);
      first_line = false;
      expected_cells = cells.size();
      if (!numeric) {
        result.had_header = true;
        continue;
      }
    }
    if (cells.size() != expected_cells || cells.empty()) {
      ++result.rows_skipped;
      continue;
    }
    size_t feature_cells =
        target == CsvTarget::kNone ? cells.size() : cells.size() - 1;
    if (feature_cells == 0) {
      ++result.rows_skipped;
      continue;
    }
    features.clear();
    bool row_ok = true;
    for (size_t c = 0; c < feature_cells; ++c) {
      double v;
      if (!ParseDouble(cells[c], &v)) {
        row_ok = false;
        break;
      }
      features.push_back(static_cast<float>(v));
    }
    double trailing = 0.0;
    if (row_ok && target != CsvTarget::kNone) {
      row_ok = ParseDouble(cells.back(), &trailing);
    }
    if (!row_ok) {
      ++result.rows_skipped;
      continue;
    }
    result.data.features.AppendRow(features);
    if (target == CsvTarget::kLabel) {
      result.data.labels.push_back(static_cast<int>(trailing));
    } else if (target == CsvTarget::kTarget) {
      result.data.targets.push_back(trailing);
    }
    ++result.rows_parsed;
  }
  if (result.rows_parsed == 0) {
    result.status = Status::InvalidArgument("no usable rows in " + path);
    return result;
  }
  result.data.Validate();
  return result;
}

bool SaveCsvDataset(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  for (size_t i = 0; i < data.Size(); ++i) {
    auto row = data.features.Row(i);
    for (size_t d = 0; d < row.size(); ++d) {
      if (d) out << ',';
      out << row[d];
    }
    if (data.HasLabels()) {
      out << ',' << data.labels[i];
    } else if (data.HasTargets()) {
      out << ',' << data.targets[i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool SaveValuesCsv(const std::vector<double>& values, const Dataset& data,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << (data.HasLabels() ? "index,value,label\n" : "index,value\n");
  for (size_t i = 0; i < values.size(); ++i) {
    out << i << ',' << values[i];
    if (data.HasLabels() && i < data.labels.size()) out << ',' << data.labels[i];
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace knnshap
