// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "dataset/contrast.h"

#include <algorithm>

#include "knn/neighbors.h"
#include "util/common.h"

namespace knnshap {

ContrastEstimate EstimateRelativeContrast(const Dataset& train, const Dataset& queries,
                                          int k, size_t num_queries, size_t num_pairs,
                                          Rng* rng) {
  KNNSHAP_CHECK(train.Size() > static_cast<size_t>(k), "k must be < train size");
  KNNSHAP_CHECK(queries.Size() > 0, "no query rows");
  num_queries = std::min(num_queries, queries.Size());

  // D_mean: expected distance between a random query and a random train row.
  double d_mean_sum = 0.0;
  for (size_t p = 0; p < num_pairs; ++p) {
    size_t qi = rng->NextIndex(queries.Size());
    size_t ti = rng->NextIndex(train.Size());
    d_mean_sum += Distance(queries.features.Row(qi), train.features.Row(ti), Metric::kL2);
  }
  double d_mean = d_mean_sum / static_cast<double>(num_pairs);

  // D_K: expected distance to the Kth nearest neighbor over sampled queries.
  auto picks = rng->SampleWithoutReplacement(static_cast<int>(queries.Size()),
                                             static_cast<int>(num_queries));
  const CorpusNorms norms(train.features);
  double d_k_sum = 0.0;
  for (int qi : picks) {
    auto nns = TopKNeighbors(train.features, queries.features.Row(static_cast<size_t>(qi)),
                             static_cast<size_t>(k), Metric::kL2, &norms);
    d_k_sum += nns.back().distance;
  }
  double d_k = d_k_sum / static_cast<double>(picks.size());

  ContrastEstimate est;
  est.d_mean = d_mean;
  est.d_k = d_k;
  est.c_k = d_k > 0.0 ? d_mean / d_k : 0.0;
  return est;
}

}  // namespace knnshap
