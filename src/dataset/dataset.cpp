// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "dataset/dataset.h"

#include <algorithm>

#include "util/common.h"

namespace knnshap {

Dataset Dataset::Subset(std::span<const int> rows) const {
  Dataset out;
  out.name = name;
  out.features = Matrix(rows.size(), Dim());
  if (HasLabels()) out.labels.reserve(rows.size());
  if (HasTargets()) out.targets.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    int r = rows[i];
    KNNSHAP_CHECK(r >= 0 && static_cast<size_t>(r) < Size(), "row out of range");
    auto src = features.Row(static_cast<size_t>(r));
    std::copy(src.begin(), src.end(), out.features.MutableRow(i).begin());
    if (HasLabels()) out.labels.push_back(labels[static_cast<size_t>(r)]);
    if (HasTargets()) out.targets.push_back(targets[static_cast<size_t>(r)]);
  }
  return out;
}

void Dataset::Validate() const {
  if (HasLabels()) {
    KNNSHAP_CHECK(labels.size() == Size(), "labels/features size mismatch");
  }
  if (HasTargets()) {
    KNNSHAP_CHECK(targets.size() == Size(), "targets/features size mismatch");
  }
}

TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction, Rng* rng) {
  KNNSHAP_CHECK(test_fraction > 0.0 && test_fraction < 1.0,
                "test fraction must be in (0,1)");
  KNNSHAP_CHECK(data.Size() >= 2, "need at least two rows to split");
  const int n = static_cast<int>(data.Size());
  std::vector<int> order = rng->Permutation(n);
  int test_count = std::clamp(static_cast<int>(test_fraction * n), 1, n - 1);
  std::vector<int> test_rows(order.begin(), order.begin() + test_count);
  std::vector<int> train_rows(order.begin() + test_count, order.end());
  TrainTestSplit split;
  split.test = data.Subset(test_rows);
  split.train = data.Subset(train_rows);
  return split;
}

Dataset Bootstrap(const Dataset& data, size_t size, Rng* rng) {
  KNNSHAP_CHECK(data.Size() > 0, "bootstrap of empty dataset");
  std::vector<int> rows(size);
  for (auto& r : rows) {
    r = static_cast<int>(rng->NextIndex(data.Size()));
  }
  Dataset out = data.Subset(rows);
  out.name = data.name + "-bootstrap";
  return out;
}

}  // namespace knnshap
