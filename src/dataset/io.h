// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// CSV import/export for datasets, so real feature matrices (e.g. CNN
// embeddings exported from Python) can be valued without recompiling.
//
// Format: one row per point. By default the *last* column is the label
// (classification) or target (regression); every other column is a
// feature. A single optional header line is detected and skipped.

#ifndef KNNSHAP_DATASET_IO_H_
#define KNNSHAP_DATASET_IO_H_

#include <string>

#include "dataset/dataset.h"
#include "util/status.h"

namespace knnshap {

/// How to interpret the trailing column of a CSV file.
enum class CsvTarget {
  kLabel,    ///< Last column is an integer class label.
  kTarget,   ///< Last column is a real-valued regression target.
  kNone,     ///< All columns are features (unlabeled data).
};

/// Result of a load: the dataset plus parse diagnostics.
struct CsvLoadResult {
  Dataset data;
  size_t rows_parsed = 0;
  size_t rows_skipped = 0;  ///< Malformed rows (wrong arity / non-numeric).
  bool had_header = false;
  /// OK, or the typed fatal failure: not_found for an unreadable file,
  /// invalid_argument for a file with no usable rows — so callers (the
  /// serve load op) map it to a stable wire code without parsing prose.
  Status status;

  bool ok() const { return status.ok(); }
  const std::string& error() const { return status.message(); }
};

/// Loads a dataset from `path`. Rows with the wrong column count or
/// non-numeric cells are skipped and counted, not fatal; an unreadable
/// file or zero usable rows is fatal.
CsvLoadResult LoadCsvDataset(const std::string& path, CsvTarget target);

/// Writes `data` to `path` (features then label/target per row, no
/// header). Returns false on I/O failure.
bool SaveCsvDataset(const Dataset& data, const std::string& path);

/// Writes per-point values next to their row index and (if present) label:
/// columns `index,value[,label]`. Returns false on I/O failure.
bool SaveValuesCsv(const std::vector<double>& values, const Dataset& data,
                   const std::string& path);

}  // namespace knnshap

#endif  // KNNSHAP_DATASET_IO_H_
