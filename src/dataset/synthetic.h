// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Synthetic deep-feature generators. The paper evaluates on embeddings of
// MNIST / CIFAR-10 / ImageNet / Yahoo10m / dog-fish / Iris produced by
// large CNNs; those datasets are not available offline, so this module
// generates Gaussian-mixture stand-ins whose *geometry* — class count,
// dimensionality, and most importantly relative contrast C_K (the quantity
// Theorems 3-4 say governs LSH behaviour) — matches what the paper reports.
// Every algorithm under test touches features only through pairwise
// distances, so matching the geometry preserves the experimental behaviour.
// See DESIGN.md "Simulated substitutions".

#ifndef KNNSHAP_DATASET_SYNTHETIC_H_
#define KNNSHAP_DATASET_SYNTHETIC_H_

#include <string>

#include "dataset/dataset.h"
#include "util/random.h"

namespace knnshap {

/// Parameters of a Gaussian-mixture dataset.
struct SyntheticSpec {
  std::string name = "synthetic";
  int num_classes = 2;
  size_t dim = 32;
  size_t size = 1000;
  /// Distance scale between class means (means are random unit vectors
  /// multiplied by this).
  double class_separation = 1.0;
  /// Within-class standard deviation per coordinate. Smaller values give
  /// tighter clusters and thus *higher* relative contrast.
  double cluster_stddev = 0.35;
  /// Fraction of training labels flipped to a random wrong class (models
  /// noisy or adversarial contributions; 0 = clean).
  double label_noise = 0.0;
  /// Per-class spread multipliers; empty = all 1. Unequal values create the
  /// asymmetric overlap of the dog-fish dataset (Figure 14).
  std::vector<double> class_spread_scale;
};

/// Draws a dataset from the mixture described by `spec`.
Dataset MakeGaussianMixture(const SyntheticSpec& spec, Rng* rng);

/// Adds regression targets y = <w, x> + noise to a dataset in place, using
/// a random unit weight vector; returns the weight vector used.
std::vector<double> AttachLinearTargets(Dataset* data, double noise_stddev, Rng* rng);

// ---------------------------------------------------------------------------
// Named presets mirroring the paper's evaluation datasets (Sec 6.1).
// Sizes are the *paper's* sizes divided by `scale_divisor` so that the full
// benchmark suite stays laptop-sized by default; pass 1 to reproduce the
// paper-scale run. Feature dimension is reduced from 1024-2048 to 64 (the
// relative contrast, not the raw dimension, drives every measured effect).
// ---------------------------------------------------------------------------

/// MNIST-like: 10 classes, contrast comparable to deep MNIST features.
Dataset MakeMnistLike(size_t train_size, Rng* rng);

/// CIFAR-10-like: 10 classes, estimated contrast ~1.28 (paper Fig 7).
Dataset MakeCifar10Like(size_t train_size, Rng* rng);

/// ImageNet-like: 100 classes (paper: 1000), contrast ~1.22 (paper Fig 7).
Dataset MakeImageNetLike(size_t train_size, Rng* rng);

/// Yahoo10m-like: unlabeled-style 10-class mix, contrast ~1.35 (paper Fig 7).
Dataset MakeYahoo10mLike(size_t train_size, Rng* rng);

/// dog-fish-like: 2 classes, 900 train/class in the paper; the "fish" class
/// has wider spread so its points intrude into the "dog" test region,
/// reproducing the label-inconsistency asymmetry of Figure 14(c).
Dataset MakeDogFishLike(size_t train_size, Rng* rng);

/// Iris-like: 3 classes, 4 dimensions, 150 rows, one overlapping class pair.
Dataset MakeIrisLike(size_t size, Rng* rng);

/// Contrast-calibrated presets for the Figure 9 sweep ("deep", "gist",
/// "dog-fish" in the paper, ordered by decreasing relative contrast).
Dataset MakeHighContrast(size_t size, Rng* rng);
Dataset MakeMidContrast(size_t size, Rng* rng);
Dataset MakeLowContrast(size_t size, Rng* rng);

// ---------------------------------------------------------------------------
// Retrieval-geometry presets for the Figure 7 / Figure 17 runtime tables.
// A single Gaussian mixture cannot simultaneously match a real embedding's
// classification accuracy *and* its relative contrast (real deep features
// have manifold structure; isotropic Gaussians trade one for the other), so
// the runtime tables use these presets whose C_10 is calibrated to the
// paper's measured values — CIFAR-10 1.28, ImageNet 1.22, Yahoo10m 1.35 —
// while the accuracy study (Figure 8) uses the separable presets above.
// ---------------------------------------------------------------------------

/// C_10 ~ 1.28 (paper's CIFAR-10 estimate).
Dataset MakeCifar10Contrast(size_t size, Rng* rng);

/// C_10 ~ 1.22 (paper's ImageNet estimate).
Dataset MakeImageNetContrast(size_t size, Rng* rng);

/// C_10 ~ 1.35 (paper's Yahoo10m estimate).
Dataset MakeYahoo10mContrast(size_t size, Rng* rng);

}  // namespace knnshap

#endif  // KNNSHAP_DATASET_SYNTHETIC_H_
