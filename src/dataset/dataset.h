// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Dataset container shared by every algorithm: features plus either class
// labels (classification) or real-valued targets (regression). The paper's
// games treat each training instance as a player; the Dataset row index is
// the player id.

#ifndef KNNSHAP_DATASET_DATASET_H_
#define KNNSHAP_DATASET_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/random.h"

namespace knnshap {

/// Feature matrix with per-row labels and/or regression targets.
struct Dataset {
  Matrix features;
  std::vector<int> labels;      ///< Class ids; empty for pure regression data.
  std::vector<double> targets;  ///< Regression targets; empty for pure classification.
  std::string name;             ///< Human-readable identifier for reports.

  size_t Size() const { return features.Rows(); }
  size_t Dim() const { return features.Cols(); }
  bool HasLabels() const { return !labels.empty(); }
  bool HasTargets() const { return !targets.empty(); }

  /// Returns a copy containing only the given rows, in the given order.
  Dataset Subset(std::span<const int> rows) const;

  /// Aborts if the label/target vectors are inconsistent with the matrix.
  void Validate() const;
};

/// A train/test partition of a dataset.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Randomly splits `data` into train/test with `test_fraction` of rows in
/// the test part (at least one row in each part when possible).
TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction, Rng* rng);

/// Bootstrap resample of `data` with `size` rows (sampling with
/// replacement). The paper bootstraps MNIST to synthesize larger training
/// sets for the Figure 6 scaling study.
Dataset Bootstrap(const Dataset& data, size_t size, Rng* rng);

}  // namespace knnshap

#endif  // KNNSHAP_DATASET_DATASET_H_
