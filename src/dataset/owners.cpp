// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "dataset/owners.h"

#include <algorithm>

#include "util/common.h"

namespace knnshap {

OwnerAssignment::OwnerAssignment(std::vector<int> owner_of)
    : owner_of_(std::move(owner_of)) {
  KNNSHAP_CHECK(!owner_of_.empty(), "empty ownership map");
  num_sellers_ = *std::max_element(owner_of_.begin(), owner_of_.end()) + 1;
  rows_of_.resize(static_cast<size_t>(num_sellers_));
  for (size_t row = 0; row < owner_of_.size(); ++row) {
    int owner = owner_of_[row];
    KNNSHAP_CHECK(owner >= 0, "negative seller id");
    rows_of_[static_cast<size_t>(owner)].push_back(static_cast<int>(row));
  }
  for (int s = 0; s < num_sellers_; ++s) {
    KNNSHAP_CHECK(!rows_of_[static_cast<size_t>(s)].empty(),
                  "seller ids must be dense (every seller owns >= 1 row)");
  }
}

std::vector<int> OwnerAssignment::RowsOfSellers(const std::vector<int>& sellers) const {
  std::vector<int> rows;
  for (int s : sellers) {
    const auto& r = RowsOf(s);
    rows.insert(rows.end(), r.begin(), r.end());
  }
  return rows;
}

OwnerAssignment OwnerAssignment::RoundRobin(size_t num_rows, int num_sellers) {
  KNNSHAP_CHECK(num_sellers >= 1, "need at least one seller");
  KNNSHAP_CHECK(num_rows >= static_cast<size_t>(num_sellers),
                "fewer rows than sellers");
  std::vector<int> owner_of(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    owner_of[i] = static_cast<int>(i % static_cast<size_t>(num_sellers));
  }
  return OwnerAssignment(std::move(owner_of));
}

OwnerAssignment OwnerAssignment::Random(size_t num_rows, int num_sellers, Rng* rng) {
  KNNSHAP_CHECK(num_sellers >= 1, "need at least one seller");
  KNNSHAP_CHECK(num_rows >= static_cast<size_t>(num_sellers),
                "fewer rows than sellers");
  std::vector<int> owner_of(num_rows);
  // First give each seller one row, then assign the rest uniformly.
  std::vector<int> rows(num_rows);
  for (size_t i = 0; i < num_rows; ++i) rows[i] = static_cast<int>(i);
  rng->Shuffle(&rows);
  for (int s = 0; s < num_sellers; ++s) {
    owner_of[static_cast<size_t>(rows[static_cast<size_t>(s)])] = s;
  }
  for (size_t i = static_cast<size_t>(num_sellers); i < num_rows; ++i) {
    owner_of[static_cast<size_t>(rows[i])] =
        static_cast<int>(rng->NextIndex(static_cast<uint64_t>(num_sellers)));
  }
  return OwnerAssignment(std::move(owner_of));
}

}  // namespace knnshap
