// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "dataset/synthetic.h"

#include <cmath>
#include <vector>

#include "util/common.h"

namespace knnshap {

namespace {

// Random unit vector in `dim` dimensions.
std::vector<double> RandomUnitVector(size_t dim, Rng* rng) {
  std::vector<double> v(dim);
  double norm2 = 0.0;
  for (auto& x : v) {
    x = rng->NextGaussian();
    norm2 += x * x;
  }
  double inv = 1.0 / std::sqrt(std::max(norm2, 1e-300));
  for (auto& x : v) x *= inv;
  return v;
}

}  // namespace

Dataset MakeGaussianMixture(const SyntheticSpec& spec, Rng* rng) {
  KNNSHAP_CHECK(spec.num_classes >= 1, "need at least one class");
  KNNSHAP_CHECK(spec.dim >= 1, "need at least one dimension");
  KNNSHAP_CHECK(spec.class_spread_scale.empty() ||
                    spec.class_spread_scale.size() ==
                        static_cast<size_t>(spec.num_classes),
                "class_spread_scale size mismatch");

  std::vector<std::vector<double>> means;
  means.reserve(static_cast<size_t>(spec.num_classes));
  for (int c = 0; c < spec.num_classes; ++c) {
    auto mean = RandomUnitVector(spec.dim, rng);
    for (auto& x : mean) x *= spec.class_separation;
    means.push_back(std::move(mean));
  }

  Dataset data;
  data.name = spec.name;
  data.features = Matrix(spec.size, spec.dim);
  data.labels.resize(spec.size);
  for (size_t i = 0; i < spec.size; ++i) {
    int label = static_cast<int>(rng->NextIndex(static_cast<uint64_t>(spec.num_classes)));
    double spread = spec.cluster_stddev;
    if (!spec.class_spread_scale.empty()) {
      spread *= spec.class_spread_scale[static_cast<size_t>(label)];
    }
    auto row = data.features.MutableRow(i);
    const auto& mean = means[static_cast<size_t>(label)];
    for (size_t d = 0; d < spec.dim; ++d) {
      row[d] = static_cast<float>(mean[d] + spread * rng->NextGaussian());
    }
    if (spec.num_classes > 1) {
      // Both draws are consumed unconditionally so that two specs
      // differing only in label_noise generate identical features and
      // clean labels (the mislabel-detection experiments rely on this).
      double flip_u = rng->NextDouble();
      int wrong = static_cast<int>(
          rng->NextIndex(static_cast<uint64_t>(spec.num_classes - 1)));
      if (flip_u < spec.label_noise) {
        if (wrong >= label) ++wrong;  // uniformly random *different* class
        label = wrong;
      }
    }
    data.labels[i] = label;
  }
  data.Validate();
  return data;
}

std::vector<double> AttachLinearTargets(Dataset* data, double noise_stddev, Rng* rng) {
  KNNSHAP_CHECK(data != nullptr && data->Size() > 0, "empty dataset");
  auto weights = RandomUnitVector(data->Dim(), rng);
  data->targets.resize(data->Size());
  for (size_t i = 0; i < data->Size(); ++i) {
    auto row = data->features.Row(i);
    double y = 0.0;
    for (size_t d = 0; d < data->Dim(); ++d) y += weights[d] * row[d];
    data->targets[i] = y + noise_stddev * rng->NextGaussian();
  }
  return weights;
}

// Preset parameters were calibrated with dataset/contrast.h so that
// EstimateRelativeContrast(...) on the generated data lands near the
// contrast the paper reports for the corresponding real dataset; the
// class counts match the paper (ImageNet reduced 1000 -> 100 classes to
// keep per-class sample counts sensible at laptop scale).

Dataset MakeMnistLike(size_t train_size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "mnist-like";
  spec.num_classes = 10;
  spec.dim = 64;
  spec.size = train_size;
  spec.cluster_stddev = 0.060;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeCifar10Like(size_t train_size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "cifar10-like";
  spec.num_classes = 10;
  spec.dim = 64;
  spec.size = train_size;
  spec.cluster_stddev = 0.072;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeImageNetLike(size_t train_size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "imagenet-like";
  spec.num_classes = 100;
  spec.dim = 64;
  spec.size = train_size;
  spec.cluster_stddev = 0.080;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeYahoo10mLike(size_t train_size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "yahoo10m-like";
  spec.num_classes = 10;
  spec.dim = 64;
  spec.size = train_size;
  spec.cluster_stddev = 0.055;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeDogFishLike(size_t train_size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "dogfish-like";
  spec.num_classes = 2;
  spec.dim = 32;
  spec.size = train_size;
  spec.class_separation = 1.0;
  spec.cluster_stddev = 0.5;
  // Class 0 ("dog") is the wide cluster, class 1 ("fish") a tight cluster
  // nearby. In high dimension a dog query at squared radius ~sigma_d^2 d
  // then sees fish points at ~sigma_d^2 d + sigma_f^2 d + sep^2, which is
  // *less* than the dog-dog distance 2 sigma_d^2 d when sigma_f^2 d + sep^2
  // < sigma_d^2 d. So fish intrude on dog queries (the label-inconsistent
  // neighbors are mostly fish) while fish queries stay correctly fish —
  // exactly the Figure 14(c) asymmetry the paper reports for dog-fish.
  spec.class_spread_scale = {1.0, 0.55};
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeIrisLike(size_t size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "iris-like";
  spec.num_classes = 3;
  spec.dim = 4;
  spec.size = size;
  spec.class_separation = 1.4;
  // Wide clusters give one overlapping pair, like versicolor/virginica.
  spec.cluster_stddev = 0.45;
  spec.class_spread_scale = {0.6, 1.0, 1.0};
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeHighContrast(size_t size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "deep-like(high-contrast)";
  spec.num_classes = 10;
  spec.dim = 48;
  spec.size = size;
  spec.cluster_stddev = 0.045;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeMidContrast(size_t size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "gist-like(mid-contrast)";
  spec.num_classes = 10;
  spec.dim = 48;
  spec.size = size;
  spec.cluster_stddev = 0.085;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeLowContrast(size_t size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "dogfish-like(low-contrast)";
  spec.num_classes = 2;
  spec.dim = 48;
  spec.size = size;
  spec.cluster_stddev = 0.60;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeCifar10Contrast(size_t size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "cifar10-contrast";
  spec.num_classes = 10;
  spec.dim = 96;
  spec.size = size;
  spec.cluster_stddev = 0.30;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeImageNetContrast(size_t size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "imagenet-contrast";
  spec.num_classes = 100;
  spec.dim = 128;
  spec.size = size;
  spec.cluster_stddev = 0.30;
  return MakeGaussianMixture(spec, rng);
}

Dataset MakeYahoo10mContrast(size_t size, Rng* rng) {
  SyntheticSpec spec;
  spec.name = "yahoo10m-contrast";
  spec.num_classes = 10;
  spec.dim = 64;
  spec.size = size;
  spec.cluster_stddev = 0.45;
  return MakeGaussianMixture(spec, rng);
}

}  // namespace knnshap
