// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Relative-contrast estimation (Theorem 3). C_K = D_mean / D_K where D_mean
// is the expected query-to-random-training-point distance and D_K the
// expected query-to-Kth-nearest-neighbor distance. C_K governs how hard
// approximate nearest-neighbor retrieval is, and therefore the complexity
// exponent g(C_K) of the LSH-based Shapley approximation.

#ifndef KNNSHAP_DATASET_CONTRAST_H_
#define KNNSHAP_DATASET_CONTRAST_H_

#include <cstddef>

#include "dataset/dataset.h"
#include "util/random.h"

namespace knnshap {

/// Monte-Carlo estimates of the quantities in Eq (21)-(22).
struct ContrastEstimate {
  double d_mean = 0.0;  ///< E[distance(query, random training point)].
  double d_k = 0.0;     ///< E[distance(query, its Kth nearest neighbor)].
  double c_k = 0.0;     ///< Relative contrast D_mean / D_K.
};

/// Estimates the Kth relative contrast of `train` using `num_queries` rows
/// sampled from `queries` (often the test set) and `num_pairs` random pairs
/// for D_mean. L2 distances.
ContrastEstimate EstimateRelativeContrast(const Dataset& train, const Dataset& queries,
                                          int k, size_t num_queries, size_t num_pairs,
                                          Rng* rng);

}  // namespace knnshap

#endif  // KNNSHAP_DATASET_CONTRAST_H_
