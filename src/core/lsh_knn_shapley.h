// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// (epsilon, delta)-approximate KNN Shapley values (Theorems 2 and 4).
//
// Theorem 2: only the K* = max(K, ceil(1/epsilon)) nearest neighbors need
// nonzero values — truncating the Theorem 1 recursion there (anchoring
// s_{alpha_{K*}} = 0) yields an (epsilon, 0)-approximation, because the
// true |s_{alpha_i}| <= min(1/i, 1/K). Theorem 4 replaces the exact top-K*
// retrieval with LSH retrieval that succeeds with probability 1 - delta,
// giving sublinear O(N^{g(C_{K*})} log N) time per query when the relative
// contrast C_{K*} > 1.

#ifndef KNNSHAP_CORE_LSH_KNN_SHAPLEY_H_
#define KNNSHAP_CORE_LSH_KNN_SHAPLEY_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/neighbors.h"
#include "lsh/lsh_index.h"

namespace knnshap {

/// K* = max(K, ceil(1/epsilon)), the retrieval depth of Theorem 2.
int KStar(int k, double epsilon);

/// Truncated Theorem-1 recursion over retrieved neighbors (ascending by
/// distance). Entries of the returned vector parallel `neighbors`; ranks
/// >= K* get value 0 (their true SV is below epsilon in magnitude). If
/// fewer than K* neighbors are supplied the recursion anchors at the last
/// one.
std::vector<double> TruncatedShapleyFromNeighbors(const Dataset& train,
                                                  std::span<const Neighbor> neighbors,
                                                  int test_label, int k, int k_star);

/// (epsilon, 0)-approximation using *exact* top-K* retrieval (partial
/// selection instead of a full sort). Isolates the truncation error of
/// Theorem 2 from LSH retrieval error; also the practical choice when
/// epsilon is moderate but no index has been built.
std::vector<double> TruncatedKnnShapley(const Dataset& train, const Dataset& test,
                                        int k, double epsilon, bool parallel = true);

/// Aggregate retrieval statistics for an LshKnnShapley run (Fig 9 metrics).
struct LshShapleyStats {
  double mean_candidates = 0.0;  ///< Mean distinct candidates scanned/query.
  double mean_returned = 0.0;    ///< Mean neighbors returned (<= K*).
  size_t queries = 0;
};

/// Empirical LSH parameter selection as in Sec 6.1: the projection width
/// and m come from the contrast analysis, but the *table count* is the
/// smallest power of two whose measured SV error on a held-out validation
/// query set stays within epsilon. This is how the paper actually sizes
/// its indexes — the Theorem-3 count is a worst-case guarantee and badly
/// overshoots at low contrast. `validation` must be labeled and disjoint
/// from the evaluation queries. Returns the chosen config; `achieved_error`
/// (optional) receives the validation error of the final config.
LshConfig TuneLshEmpirically(const Dataset& train, const Dataset& validation, int k,
                             double epsilon, double contrast, size_t max_tables = 256,
                             double* achieved_error = nullptr);

/// Result of preparing a corpus for K*-depth approximate retrieval: the
/// truncation depth, the D_mean normalization factor applied, and the
/// relative-contrast estimate that drives Theorem-3 tuning.
struct LshCorpusPrep {
  int k_star = 0;
  double scale = 1.0;     ///< Factor the corpus features were multiplied by.
  double contrast = 0.0;  ///< C_{K*} estimate after normalization.
};

/// Shared fit pipeline of the streaming valuator and the engine's LSH
/// adapter: estimates the relative contrast at depth K*+1 against held-in
/// corpus rows (the extra neighbor skips the row itself), then rescales the
/// corpus features in place to D_mean = 1 (the normalization Theorem 3
/// assumes). Queries must be scaled by `scale` before retrieval.
LshCorpusPrep PrepareCorpusForRetrieval(Dataset* corpus, int k, double epsilon,
                                        uint64_t seed, size_t contrast_sample);

/// Theorem-3/4 LSH configuration for a corpus prepared by
/// PrepareCorpusForRetrieval.
LshConfig TuneForPreparedCorpus(size_t corpus_size, const LshCorpusPrep& prep,
                                double delta, uint64_t seed);

/// Theorem 4: (epsilon, delta)-approximate SVs for all training rows,
/// averaged over the test set, using LSH retrieval of the K* nearest
/// neighbors. `index` must be built over train.features; delta is
/// controlled by the index's table count (see lsh/tuning.h).
std::vector<double> LshKnnShapley(const Dataset& train, const Dataset& test, int k,
                                  double epsilon, const LshIndex& index,
                                  LshShapleyStats* stats = nullptr,
                                  bool parallel = true);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_LSH_KNN_SHAPLEY_H_
