// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/composite_game.h"

#include <algorithm>

#include "core/multi_seller_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "knn/neighbors.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

namespace {

// Averages per-test seller vectors and finishes the result with the
// analyst's share s_C = nu(I) - sum_i s_i (Eq 87/92/95/97).
CompositeShapleyResult FinishResult(std::vector<std::vector<double>> per_test,
                                    double total_utility, size_t num_players) {
  CompositeShapleyResult result;
  result.total_utility = total_utility;
  result.seller_values.assign(num_players, 0.0);
  for (const auto& row : per_test) {
    for (size_t i = 0; i < num_players; ++i) result.seller_values[i] += row[i];
  }
  for (auto& s : result.seller_values) s /= static_cast<double>(per_test.size());
  double sellers_total = 0.0;
  for (double s : result.seller_values) sellers_total += s;
  result.analyst_value = total_utility - sellers_total;
  return result;
}

}  // namespace

std::vector<double> CompositeKnnShapleyRecursion(const std::vector<int>& sorted_labels,
                                                 int test_label, int k) {
  const int n = static_cast<int>(sorted_labels.size());
  KNNSHAP_CHECK(n >= 1 && k >= 1, "bad arguments");
  const double kd = static_cast<double>(k);
  std::vector<double> sv(static_cast<size_t>(n), 0.0);
  auto match = [&](int rank) {
    return sorted_labels[static_cast<size_t>(rank - 1)] == test_label ? 1.0 : 0.0;
  };
  // Eq (85), generalized through the ratio (88) to K > N.
  double min_nk = static_cast<double>(std::min(n, k));
  sv[static_cast<size_t>(n - 1)] = match(n) * (min_nk + 1.0) /
                                   (2.0 * static_cast<double>(n + 1) *
                                    static_cast<double>(n) * (kd / min_nk));
  // Note: for N >= K the expression reduces to (K+1)/(2(N+1)N) * 1[match],
  // exactly Eq (85).
  for (int i = n - 1; i >= 1; --i) {
    double min_ik = static_cast<double>(std::min(i, k));
    double diff = (match(i) - match(i + 1)) / kd * min_ik * (min_ik + 1.0) /
                  (2.0 * static_cast<double>(i) * static_cast<double>(i + 1));
    sv[static_cast<size_t>(i - 1)] = sv[static_cast<size_t>(i)] + diff;
  }
  return sv;
}

CompositeShapleyResult CompositeKnnShapley(const Dataset& train, const Dataset& test,
                                           int k, bool parallel, Metric metric) {
  KNNSHAP_CHECK(train.HasLabels() && test.HasLabels(), "labels required");
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  const CorpusNorms norms = NormsForMetric(train.features, metric);
  std::vector<std::vector<double>> per_test(test.Size());
  auto run_one = [&](size_t j) {
    std::vector<int> order = ArgsortByDistance(train.features, test.features.Row(j),
                                               metric, &norms);
    std::vector<int> sorted_labels(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sorted_labels[i] = train.labels[static_cast<size_t>(order[i])];
    }
    std::vector<double> by_rank =
        CompositeKnnShapleyRecursion(sorted_labels, test.labels[j], k);
    std::vector<double> sv(train.Size(), 0.0);
    for (size_t i = 0; i < order.size(); ++i) {
      sv[static_cast<size_t>(order[i])] = by_rank[i];
    }
    per_test[j] = std::move(sv);
  };
  if (parallel && test.Size() > 1) {
    ThreadPool::Shared().ParallelFor(test.Size(), run_one);
  } else {
    for (size_t j = 0; j < test.Size(); ++j) run_one(j);
  }
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kClassification);
  return FinishResult(std::move(per_test), utility.GrandValue(), train.Size());
}

std::vector<double> CompositeKnnRegressionShapleyRecursion(
    const std::vector<double>& sorted_targets, double test_target, int k) {
  const int n = static_cast<int>(sorted_targets.size());
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  KNNSHAP_CHECK(n >= k + 1, "Theorem 10 requires N >= K+1");
  const double kd = static_cast<double>(k);
  const double nd = static_cast<double>(n);
  auto y = [&](int rank) { return sorted_targets[static_cast<size_t>(rank - 1)]; };
  std::vector<double> sv(static_cast<size_t>(n), 0.0);

  // Starting point (Eq 90).
  {
    double sum_rest = 0.0;
    for (int l = 1; l <= n - 1; ++l) sum_rest += y(l);
    double yn = y(n);
    double bracket = (kd + 2.0) * (kd - 1.0) / (2.0 * nd) *
                         (yn / kd - 2.0 * test_target) +
                     2.0 * (kd - 1.0) * (kd + 1.0) / (3.0 * nd * (nd - 1.0)) * sum_rest;
    double err = yn / kd - test_target;
    sv[static_cast<size_t>(n - 1)] =
        -yn * bracket / (kd * (nd + 1.0)) - err * err / (nd * (nd + 1.0));
  }

  // Suffix sums Q_i = sum_{l=i+2}^{N} y_l * 2 min(K+1,l) min(K,l-1)
  // min(K-1,l-2) / (3 l (l-1)(l-2)).
  std::vector<double> q(static_cast<size_t>(n) + 3, 0.0);
  for (int l = n; l >= 3; --l) {
    double coef = 2.0 * static_cast<double>(std::min(k + 1, l)) *
                  static_cast<double>(std::min(k, l - 1)) *
                  static_cast<double>(std::min(k - 1, l - 2)) /
                  (3.0 * static_cast<double>(l) * static_cast<double>(l - 1) *
                   static_cast<double>(l - 2));
    q[static_cast<size_t>(l)] = q[static_cast<size_t>(l + 1)] + y(l) * coef;
  }
  double prefix = 0.0;
  std::vector<double> p(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 1; i <= n; ++i) {
    p[static_cast<size_t>(i)] = prefix;
    prefix += y(i);
  }

  // Backward recursion (Eq 91).
  for (int i = n - 1; i >= 1; --i) {
    double min_k1 = static_cast<double>(std::min(k + 1, i + 1));
    double min_k = static_cast<double>(std::min(k, i));
    double term_pair = ((y(i + 1) + y(i)) / kd - 2.0 * test_target) * min_k1 * min_k /
                       (2.0 * static_cast<double>(i) * static_cast<double>(i + 1));
    double term_prefix = 0.0;
    if (i >= 2) {
      term_prefix = (1.0 / kd) * p[static_cast<size_t>(i)] * 2.0 * min_k1 * min_k *
                    static_cast<double>(std::min(k - 1, i - 1)) /
                    (3.0 * static_cast<double>(i - 1) * static_cast<double>(i) *
                     static_cast<double>(i + 1));
    }
    double term_suffix = (1.0 / kd) * q[static_cast<size_t>(i + 2)];
    double diff =
        (y(i + 1) - y(i)) / kd * (term_pair + term_prefix + term_suffix);
    sv[static_cast<size_t>(i - 1)] = sv[static_cast<size_t>(i)] + diff;
  }
  return sv;
}

CompositeShapleyResult CompositeKnnRegressionShapley(const Dataset& train,
                                                     const Dataset& test, int k,
                                                     bool parallel, Metric metric) {
  KNNSHAP_CHECK(train.HasTargets() && test.HasTargets(), "targets required");
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  const CorpusNorms norms = NormsForMetric(train.features, metric);
  std::vector<std::vector<double>> per_test(test.Size());
  auto run_one = [&](size_t j) {
    std::vector<int> order = ArgsortByDistance(train.features, test.features.Row(j),
                                               metric, &norms);
    std::vector<double> sorted_targets(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sorted_targets[i] = train.targets[static_cast<size_t>(order[i])];
    }
    std::vector<double> by_rank =
        CompositeKnnRegressionShapleyRecursion(sorted_targets, test.targets[j], k);
    std::vector<double> sv(train.Size(), 0.0);
    for (size_t i = 0; i < order.size(); ++i) {
      sv[static_cast<size_t>(order[i])] = by_rank[i];
    }
    per_test[j] = std::move(sv);
  };
  if (parallel && test.Size() > 1) {
    ThreadPool::Shared().ParallelFor(test.Size(), run_one);
  } else {
    for (size_t j = 0; j < test.Size(); ++j) run_one(j);
  }
  KnnSubsetUtility utility(&train, &test, k, KnnTask::kRegression);
  return FinishResult(std::move(per_test), utility.GrandValue(), train.Size());
}

CompositeShapleyResult CompositeWeightedKnnShapley(const Dataset& train,
                                                   const Dataset& test, int k,
                                                   const WeightConfig& weights,
                                                   KnnTask task, bool parallel,
                                                   Metric metric) {
  WeightedShapleyOptions options;
  options.k = k;
  options.weights = weights;
  options.task = task;
  options.metric = metric;
  options.composite_game = true;
  CompositeShapleyResult result;
  result.seller_values = ExactWeightedKnnShapley(train, test, options, parallel);
  KnnSubsetUtility utility(&train, &test, k, task, weights);
  result.total_utility = utility.GrandValue();
  double sellers_total = 0.0;
  for (double s : result.seller_values) sellers_total += s;
  result.analyst_value = result.total_utility - sellers_total;
  return result;
}

CompositeShapleyResult CompositeMultiSellerShapley(const Dataset& train,
                                                   const OwnerAssignment& owners,
                                                   const Dataset& test, int k,
                                                   KnnTask task,
                                                   const WeightConfig& weights,
                                                   bool parallel, Metric metric) {
  MultiSellerShapleyOptions options;
  options.k = k;
  options.task = task;
  options.weights = weights;
  options.metric = metric;
  options.composite_game = true;
  CompositeShapleyResult result;
  result.seller_values = MultiSellerShapley(train, owners, test, options, parallel);
  KnnSubsetUtility utility(&train, &test, k, task, weights);
  result.total_utility = utility.GrandValue();
  double sellers_total = 0.0;
  for (double s : result.seller_values) sellers_total += s;
  result.analyst_value = result.total_utility - sellers_total;
  return result;
}

}  // namespace knnshap
