// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/exact_enumeration.h"

#include <algorithm>
#include <bit>

#include "util/binomial.h"
#include "util/common.h"

namespace knnshap {

std::vector<double> ShapleyByEnumeration(const SubsetUtility& utility) {
  const int n = utility.NumPlayers();
  KNNSHAP_CHECK(n >= 1 && n <= 24, "enumeration oracle limited to N <= 24");
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);

  // Memoize nu over all subsets, indexed by bitmask.
  std::vector<double> value(static_cast<size_t>(full) + 1, 0.0);
  std::vector<int> members;
  members.reserve(static_cast<size_t>(n));
  for (uint32_t mask = 0; mask <= full; ++mask) {
    members.clear();
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) members.push_back(i);
    }
    value[mask] = utility.Value(members);
  }

  // Precompute the Shapley kernel 1 / (N * binom(N-1, k)).
  std::vector<double> kernel(static_cast<size_t>(n), 0.0);
  for (int k = 0; k < n; ++k) {
    kernel[static_cast<size_t>(k)] = 1.0 / (static_cast<double>(n) * Choose(n - 1, k));
  }

  std::vector<double> shapley(static_cast<size_t>(n), 0.0);
  for (uint32_t mask = 0; mask <= full; ++mask) {
    int k = std::popcount(mask);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) continue;
      double marginal = value[mask | (1u << i)] - value[mask];
      shapley[static_cast<size_t>(i)] += kernel[static_cast<size_t>(k)] * marginal;
    }
  }
  return shapley;
}

std::vector<double> ShapleyByAllPermutations(const SubsetUtility& utility) {
  const int n = utility.NumPlayers();
  KNNSHAP_CHECK(n >= 1 && n <= 10, "permutation oracle limited to N <= 10");
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;

  std::vector<double> shapley(static_cast<size_t>(n), 0.0);
  size_t count = 0;
  std::vector<int> prefix;
  prefix.reserve(static_cast<size_t>(n));
  do {
    prefix.clear();
    double prev = utility.Value(prefix);  // nu(empty set)
    for (int i = 0; i < n; ++i) {
      prefix.push_back(perm[static_cast<size_t>(i)]);
      double cur = utility.Value(prefix);
      shapley[static_cast<size_t>(perm[static_cast<size_t>(i)])] += cur - prev;
      prev = cur;
    }
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));

  for (auto& s : shapley) s /= static_cast<double>(count);
  return shapley;
}

}  // namespace knnshap
