// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The generic "piecewise utility difference" framework (Sec 4 comments +
// Appendix F). When nu(S u {i}) - nu(S u {j}) = sum_t C_t 1[S in S_t],
// Lemma 1 reduces the SV difference between i and j to a counting problem
// (Eq 31):
//   s_i - s_j = 1/(N-1) sum_t C_t [ sum_k |{S in S_t : |S|=k}| / binom(N-2,k) ].
// This module evaluates that reduction given group coefficients and
// per-size counts, and provides the counts for the unweighted-KNN group
// S_1 of Eq (100). Tests use it to re-derive Theorem 1 independently of
// the recursion.

#ifndef KNNSHAP_CORE_PIECEWISE_H_
#define KNNSHAP_CORE_PIECEWISE_H_

#include <vector>

namespace knnshap {

/// One group of the piecewise decomposition.
struct PiecewiseGroup {
  /// C_t: constant utility difference on this group.
  double coefficient = 0.0;
  /// size_counts[k] = |{S in S_t : |S| = k}| for k = 0..N-2.
  std::vector<double> size_counts;
};

/// Eq (31): the SV difference s_i - s_j implied by the groups.
double ShapleyDifferenceFromPiecewise(int n, const std::vector<PiecewiseGroup>& groups);

/// Counts for the unweighted KNN classification group of Eq (100):
/// S_1 = { S subseteq I\{i, i+1} : fewer than K elements of S rank before
/// i }, with ranks 1..N by distance. Returns counts[k] for k = 0..N-2:
///   counts[k] = sum_{m=0}^{min(K-1,k)} binom(i-1, m) binom(N-i-1, k-m).
std::vector<double> UnweightedKnnGroupCounts(int n, int k, int i);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_PIECEWISE_H_
