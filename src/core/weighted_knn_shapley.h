// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Exact Shapley values for *weighted* KNN classification and regression
// (Theorem 7 / Appendix E.2), utility Eq (26)/(27). Weighted utilities are
// no longer determined by label counts alone, so the O(N log N) recursion
// does not apply; but since nu(S) depends only on the top-K set of S and
// there are at most O(N^K) distinct top-K sets, the SV is computable in
// O(N^K) — still exponentially better than 2^N.
//
// The per-pair difference (Lemma 1) is evaluated group-by-group:
//   * subsets S' of size k' <= K-2 are singleton groups with weight
//     1/binom(N-2, k');
//   * each subset S' of size K-1 represents every S that extends it with
//     elements ranked beyond r = max-rank(S' u {i, i+1}); the group weight
//     is M(r) = sum_{k>=K-1} binom(N-r, k-K+1)/binom(N-2, k)  (Eq 81-83).
//
// The same machinery computes the composite-game values of Theorem 11 with
// the modified weights 1/binom(N-1, k'+1) and
// Mc(r) = sum_{k>=K-1} binom(N-r, k-K+1)/binom(N-1, k+1).

#ifndef KNNSHAP_CORE_WEIGHTED_KNN_SHAPLEY_H_
#define KNNSHAP_CORE_WEIGHTED_KNN_SHAPLEY_H_

#include <span>
#include <vector>

#include "core/utility.h"
#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"
#include "knn/weights.h"

namespace knnshap {

/// Options for the weighted exact algorithm.
struct WeightedShapleyOptions {
  int k = 3;
  WeightConfig weights;                              ///< Neighbor weight kernel.
  KnnTask task = KnnTask::kWeightedClassification;   ///< Classification or regression.
  Metric metric = Metric::kL2;
  /// When true, computes the seller values of the *composite* game of
  /// Theorem 11 instead of the data-only game of Theorem 7 (the analyst's
  /// value is nu(I) minus the sellers' total; see core/composite_game.h).
  bool composite_game = false;
};

/// Exact SVs for one test point. O(N^K) utility evaluations; practical for
/// small K and moderate N (the regime of Figure 12). The task must be one
/// of the weighted variants. `norms` (optional) are precomputed row norms
/// of train.features for the distance ordering.
std::vector<double> ExactWeightedKnnShapleySingle(const Dataset& train,
                                                  std::span<const float> query,
                                                  int test_label, double test_target,
                                                  const WeightedShapleyOptions& options,
                                                  const CorpusNorms* norms = nullptr);

/// Exact SVs averaged over a test set (additivity).
std::vector<double> ExactWeightedKnnShapley(const Dataset& train, const Dataset& test,
                                            const WeightedShapleyOptions& options,
                                            bool parallel = true);

/// Number of subset-utility evaluations the exact weighted algorithm
/// performs for one test point — the paper's O(N^K) count (Eq 78), exposed
/// so benches can report work alongside wall time.
double WeightedShapleyEvalCount(int n, int k);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_WEIGHTED_KNN_SHAPLEY_H_
