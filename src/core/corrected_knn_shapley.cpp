// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/corrected_knn_shapley.h"

#include <algorithm>

#include "knn/neighbors.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/common.h"

namespace knnshap {

namespace {

// Rank-independent contribution of all coalitions with |S| < K: the point's
// own vote enters a mean over min(K, |S|+1) voters, and the other votes
// average hypergeometrically. g is affine in the match indicator a; G is
// the total match count over all N training points.
//
//   g(a) = (1/N) [ a + sum_{m=1}^{min(K,N)-1}
//                      ( (m (G-a)/(N-1) + a) / (m+1)  -  (G-a)/(N-1) ) ]
double SmallCoalitionTerm(double a, double total_matches, int n, int k) {
  const double nd = static_cast<double>(n);
  double sum = a;  // m = 0: nu({i}) - nu(emptyset) = a.
  if (n > 1) {
    const double others = total_matches - a;  // matches among the other N-1
    const double mean_match = others / (nd - 1.0);
    const int m_end = std::min(k, n) - 1;
    for (int m = 1; m <= m_end; ++m) {
      const double md = static_cast<double>(m);
      sum += (md * mean_match + a) / (md + 1.0) - mean_match;
    }
  }
  return sum / nd;
}

}  // namespace

std::vector<double> CorrectedKnnShapleyRecursion(const std::vector<int>& sorted_labels,
                                                 int test_label, int k) {
  const int n = static_cast<int>(sorted_labels.size());
  KNNSHAP_CHECK(n >= 1, "empty training set");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");

  auto match = [&](int rank) {  // rank is 1-based
    return sorted_labels[static_cast<size_t>(rank - 1)] == test_label ? 1.0 : 0.0;
  };
  double total_matches = 0.0;
  for (int r = 1; r <= n; ++r) total_matches += match(r);

  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  // Difference of the rank-independent term between a matching and a
  // non-matching point (g is affine in a, so only the gap is needed).
  const double g_gap = SmallCoalitionTerm(1.0, total_matches, n, k) -
                       SmallCoalitionTerm(0.0, total_matches, n, k);

  std::vector<double> sv(static_cast<size_t>(n), 0.0);
  // Farthest point: every coalition of size >= K has K closer members, so
  // only the small-coalition term survives.
  sv[static_cast<size_t>(n - 1)] = SmallCoalitionTerm(match(n), total_matches, n, k);

  for (int r = n - 1; r >= 1; --r) {
    // W_r = sum_{m=K}^{N-1} Pr[< K of the r-1 closer points land in a
    // uniform m-subset of the other N-1] — closed form via the expected
    // position of the K-th closer point.
    double w = 0.0;
    if (n - 1 >= k) {
      w = r <= k ? nd - kd : kd * (nd - static_cast<double>(r)) / static_cast<double>(r);
    }
    sv[static_cast<size_t>(r - 1)] =
        sv[static_cast<size_t>(r)] +
        (match(r) - match(r + 1)) * (g_gap + w / (nd * kd));
  }
  return sv;
}

std::vector<double> CorrectedKnnShapleyFromOrder(std::span<const int> order,
                                                 std::span<const int> labels,
                                                 int test_label, int k) {
  // Span covers ranking-to-SV work: label gather, recursion, scatter.
  ScopedPhase span(Phase::kRecursion);
  std::vector<int> sorted_labels(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_labels[i] = labels[static_cast<size_t>(order[i])];
  }
  std::vector<double> by_rank =
      CorrectedKnnShapleyRecursion(sorted_labels, test_label, k);
  std::vector<double> sv(labels.size(), 0.0);
  for (size_t i = 0; i < order.size(); ++i) {
    sv[static_cast<size_t>(order[i])] = by_rank[i];
  }
  return sv;
}

std::vector<double> CorrectedKnnShapleySingle(const Dataset& train,
                                              std::span<const float> query,
                                              int test_label, int k, Metric metric,
                                              const CorpusNorms* norms) {
  KNNSHAP_CHECK(train.HasLabels(), "labels required");
  // Per-thread order scratch, matching ExactKnnShapleySingle.
  static thread_local std::vector<int> order;
  ArgsortByDistanceInto(train.features, query, metric, norms, &order);
  return CorrectedKnnShapleyFromOrder(order, train.labels, test_label, k);
}

size_t TruncatedCorrectedEffectiveRank(size_t r, size_t n, int k) {
  // The accumulated c_i coefficients read ranks down to K, so the prefix
  // must reach it. (The N-1 < K regime never asks for a prefix at all.)
  (void)n;
  return std::max(r, static_cast<size_t>(k));
}

std::vector<double> TruncatedCorrectedKnnShapleyFromOrder(
    std::span<const int> order_prefix, std::span<const int> labels,
    int test_label, int k) {
  const size_t n = labels.size();
  KNNSHAP_CHECK(n >= 1, "empty training set");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  const int ni = static_cast<int>(n);
  double total_matches = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == test_label) total_matches += 1.0;
  }
  const double base0 = SmallCoalitionTerm(0.0, total_matches, ni, k);
  const double base1 = SmallCoalitionTerm(1.0, total_matches, ni, k);
  if (ni - 1 < k) {
    // No coalition ever reaches size K, so only the rank-independent term
    // exists: exact values from labels alone, the ranking is irrelevant.
    std::vector<double> sv(n);
    for (size_t i = 0; i < n; ++i) {
      sv[i] = labels[i] == test_label ? base1 : base0;
    }
    return sv;
  }
  const size_t r = order_prefix.size();
  KNNSHAP_CHECK(r >= static_cast<size_t>(k) && r < n,
                "prefix length must be TruncatedCorrectedEffectiveRank and < n");
  ScopedPhase span(Phase::kRecursion);
  // Tail points get their rank-independent term; the dropped rank-dependent
  // sum is bounded by c_r for every one of them.
  std::vector<double> sv(n);
  for (size_t i = 0; i < n; ++i) {
    sv[i] = labels[i] == test_label ? base1 : base0;
  }
  auto match = [&](int rank) {  // rank is 1-based, within the prefix
    const int row = order_prefix[static_cast<size_t>(rank - 1)];
    return labels[static_cast<size_t>(row)] == test_label ? 1.0 : 0.0;
  };
  // phi_r = g(a_r) + sum_{i=r}^{R-1} (a_i - a_{i+1}) c_i, accumulated
  // backwards from the truncation point (rank R keeps its g(a) value,
  // absorbing the whole dropped sum into the error bound).
  const double nd = static_cast<double>(ni);
  double acc = 0.0;
  for (int i = static_cast<int>(r) - 1; i >= 1; --i) {
    const double c = 1.0 / static_cast<double>(std::max(i, k)) - 1.0 / nd;
    acc += (match(i) - match(i + 1)) * c;
    const size_t row = static_cast<size_t>(order_prefix[static_cast<size_t>(i - 1)]);
    sv[row] = (match(i) == 1.0 ? base1 : base0) + acc;
  }
  return sv;
}

std::vector<double> TruncatedCorrectedKnnShapleySingle(
    const Dataset& train, std::span<const float> query, int test_label, int k,
    size_t r, Metric metric, const CorpusNorms* norms) {
  KNNSHAP_CHECK(train.HasLabels(), "labels required");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  const size_t n = train.Size();
  KNNSHAP_CHECK(n >= 1, "empty training set");
  const int ni = static_cast<int>(n);
  if (ni - 1 < k) {
    // Labels-only regime: no distance pass at all.
    return TruncatedCorrectedKnnShapleyFromOrder({}, train.labels, test_label, k);
  }
  r = TruncatedCorrectedEffectiveRank(r, n, k);
  if (r >= n) {
    return CorrectedKnnShapleySingle(train, query, test_label, k, metric, norms);
  }
  static thread_local std::vector<int> order;
  TopROrderByDistance(train.features, query, r, metric, norms, &order);
  if (CancelRequested()) return std::vector<double>(n, 0.0);
  return TruncatedCorrectedKnnShapleyFromOrder(order, train.labels, test_label, k);
}

double TruncatedCorrectedKnnShapleyBound(size_t r, size_t n, int k) {
  if (n == 0 || r >= n) return 0.0;
  if (static_cast<size_t>(k) >= n) return 0.0;  // N-1 < K: exact already.
  r = std::max<size_t>(r, 1);
  return 1.0 / static_cast<double>(r) - 1.0 / static_cast<double>(n);
}

}  // namespace knnshap
