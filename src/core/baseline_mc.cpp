// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/baseline_mc.h"

#include "core/bennett.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/random.h"

namespace knnshap {

McEstimate BaselineMcShapley(const SubsetUtility& utility,
                             const BaselineMcOptions& options) {
  const int n = utility.NumPlayers();
  KNNSHAP_CHECK(n >= 1, "no players");
  int64_t budget = options.max_permutations >= 0
                       ? options.max_permutations
                       : HoeffdingPermutations(n, options.epsilon, options.delta,
                                               options.utility_range);

  Rng rng(options.seed);
  McEstimate result;
  result.shapley.assign(static_cast<size_t>(n), 0.0);
  std::vector<double> sums(static_cast<size_t>(n), 0.0);
  std::vector<int> prefix;
  prefix.reserve(static_cast<size_t>(n));

  for (int64_t t = 1; t <= budget; ++t) {
    // Per-permutation cancellation poll: the completed permutations still
    // form a valid (if high-variance) estimate; the engine discards it.
    if (CancelRequested()) break;
    std::vector<int> perm = rng.Permutation(n);
    prefix.clear();
    double prev = utility.Value(prefix);
    ++result.utility_evaluations;
    for (int i = 0; i < n; ++i) {
      prefix.push_back(perm[static_cast<size_t>(i)]);
      double cur = utility.Value(prefix);
      ++result.utility_evaluations;
      sums[static_cast<size_t>(perm[static_cast<size_t>(i)])] += cur - prev;
      prev = cur;
    }
    result.permutations = t;
    if (options.snapshot_every > 0 && options.snapshot &&
        (t % options.snapshot_every == 0 || t == budget)) {
      std::vector<double> estimate(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        estimate[static_cast<size_t>(i)] =
            sums[static_cast<size_t>(i)] / static_cast<double>(t);
      }
      options.snapshot(t, estimate);
    }
  }
  if (result.permutations == 0) return result;  // cancelled before pass 1
  for (int i = 0; i < n; ++i) {
    result.shapley[static_cast<size_t>(i)] =
        sums[static_cast<size_t>(i)] / static_cast<double>(result.permutations);
  }
  return result;
}

}  // namespace knnshap
