// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The improved Monte-Carlo estimator (Algorithm 2 + Theorem 5). Two ideas
// over the baseline:
//  1. Incremental utility: along a permutation the K nearest neighbors are
//     maintained in a bounded max-heap, so the utility after each insertion
//     costs O(log K + K) instead of a full re-sort — O(N log K) per
//     permutation instead of O(N^2 log N) utility work.
//  2. Bennett sample bound: phi_i = 0 with probability (i-K)/i for i > K
//     (inserting a far point rarely changes the K-NN), so the variance is
//     far below the Hoeffding worst case; Theorem 5's T* is roughly
//     N-independent where Hoeffding's bound grows with log N.
// A heuristic stopping rule (change of estimates between consecutive
// iterations < eps/50, as in Sec 6.2.2) is also provided.

#ifndef KNNSHAP_CORE_IMPROVED_MC_H_
#define KNNSHAP_CORE_IMPROVED_MC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/baseline_mc.h"
#include "dataset/dataset.h"
#include "dataset/owners.h"
#include "knn/metric.h"
#include "core/utility.h"
#include "util/bounded_heap.h"

namespace knnshap {

/// A utility that can be evaluated incrementally along a permutation.
class IncrementalUtility {
 public:
  virtual ~IncrementalUtility() = default;

  /// Number of players.
  virtual int NumPlayers() const = 0;

  /// Utility of the empty coalition.
  virtual double EmptyValue() const = 0;

  /// Starts a new permutation with an empty prefix.
  virtual void Reset() = 0;

  /// Adds `player` to the prefix and returns the utility of the enlarged
  /// prefix. Amortized O(N_test (log K + K)) for the KNN implementation.
  virtual double AddPlayer(int player) = 0;
};

/// Incremental KNN utility over one or more test points; players are
/// training rows, or sellers when an OwnerAssignment is supplied (a seller
/// insertion adds all of their rows, as in the Fig 13 experiment).
class IncrementalKnnUtility : public IncrementalUtility {
 public:
  IncrementalKnnUtility(const Dataset* train, const Dataset* test, int k, KnnTask task,
                        WeightConfig weights = {},
                        const OwnerAssignment* owners = nullptr,
                        Metric metric = Metric::kL2);

  int NumPlayers() const override;
  double EmptyValue() const override;
  void Reset() override;
  double AddPlayer(int player) override;

 private:
  void AddRow(int row);
  double TestUtility(size_t test_idx) const;
  double RowDistance(int row, size_t test_idx) const;

  const Dataset* train_;
  const Dataset* test_;
  int k_;
  KnnTask task_;
  WeightConfig weights_;
  const OwnerAssignment* owners_;
  Metric metric_;
  std::vector<BoundedMaxHeap<int>> heaps_;   // one per test point
  std::vector<double> test_utilities_;       // cached per-test utilities
  double total_utility_ = 0.0;
  std::vector<double> distance_cache_;       // test-major, when affordable
  bool cache_distances_ = false;
};

/// Composite-game adapter (Eq 28) over any incremental utility: players
/// 0..N-1 are the base players and player N is the analyst; prefixes
/// without the analyst (or with no data) evaluate to zero. Lets the
/// Monte-Carlo estimators handle the composite games of Theorems 9-12
/// without bespoke code.
class CompositeIncrementalUtility : public IncrementalUtility {
 public:
  /// `base` must outlive this object.
  explicit CompositeIncrementalUtility(IncrementalUtility* base);

  int NumPlayers() const override;
  double EmptyValue() const override;
  void Reset() override;
  double AddPlayer(int player) override;

  /// Id of the analyst player.
  int AnalystId() const { return base_->NumPlayers(); }

 private:
  IncrementalUtility* base_;
  bool analyst_in_ = false;
  int sellers_in_ = 0;
  double base_value_ = 0.0;
};

/// Stopping rules for the improved estimator.
enum class McStoppingRule {
  kHoeffding,      ///< Baseline bound (for ablation).
  kBennett,        ///< Theorem 5's T*, solved numerically.
  kApproxBennett,  ///< Closed form T~ (Eq 134).
  kHeuristic,      ///< Stop when estimates move < eps/50 between iterations.
};

/// Options for the improved estimator.
struct ImprovedMcOptions {
  double epsilon = 0.1;
  double delta = 0.1;
  int k = 1;                   ///< K of the underlying KNN model.
  double utility_range = 1.0;  ///< Range r of the utility difference.
  McStoppingRule stopping = McStoppingRule::kBennett;
  double heuristic_divisor = 50.0;  ///< Threshold = epsilon / divisor.
  int64_t min_permutations = 8;     ///< Floor for the heuristic rule.
  int64_t max_permutations = -1;    ///< Cap; <0 = rule's bound only.
  uint64_t seed = 1;
  /// Truncated Monte Carlo (the TMC heuristic of Ghorbani & Zou, discussed
  /// in the paper's related work): once a permutation's running utility is
  /// within this tolerance of the grand-coalition utility, the remaining
  /// players' marginals are taken as zero and the pass ends early.
  /// 0 disables truncation (the default — TMC voids the (eps,delta)
  /// guarantee; it is a speed heuristic).
  double tmc_tolerance = 0.0;
};

/// Runs Algorithm 2. Returns estimates and the permutation count used.
McEstimate ImprovedMcShapley(IncrementalUtility* utility,
                             const ImprovedMcOptions& options);

/// Permutation budget implied by `options` for an N-player game (exposed
/// for the Fig 11 comparison).
int64_t StoppingRulePermutations(const ImprovedMcOptions& options, int64_t n);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_IMPROVED_MC_H_
