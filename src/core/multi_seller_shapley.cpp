// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/multi_seller_shapley.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "knn/knn_classifier.h"
#include "knn/knn_regressor.h"
#include "knn/neighbors.h"
#include "util/binomial.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

namespace {

// Sort key: (distance to query, row id). The id tiebreak makes every
// ranking decision — top-K membership, max-of-S, G membership — mutually
// consistent under duplicate distances.
using RowKey = std::pair<double, int>;

double EvaluateUtility(const Dataset& train, std::span<const int> rows,
                       std::span<const float> query, int test_label,
                       double test_target, const MultiSellerShapleyOptions& options) {
  switch (options.task) {
    case KnnTask::kClassification:
      return UnweightedKnnClassUtility(train, rows, query, test_label, options.k,
                                       options.metric);
    case KnnTask::kWeightedClassification:
      return WeightedKnnClassUtility(train, rows, query, test_label, options.k,
                                     options.weights, options.metric);
    case KnnTask::kRegression:
      return UnweightedKnnRegressionUtility(train, rows, query, test_target, options.k,
                                            options.metric);
    case KnnTask::kWeightedRegression:
      return WeightedKnnRegressionUtility(train, rows, query, test_target, options.k,
                                          options.weights, options.metric);
  }
  KNNSHAP_CHECK(false, "unknown task");
}

// One element of the collection A: a realizable top-K set.
struct TopKPattern {
  std::vector<int> rows;     // Top-K rows, ascending by key.
  std::vector<int> sellers;  // h(S): owners contributing to the top-K, sorted.
  RowKey max_key;            // Key of the farthest row in S.
  double value;              // nu(S).
};

void ForEachCombination(int pool, int size,
                        const std::function<void(const std::vector<int>&)>& fn) {
  if (size > pool) return;
  std::vector<int> idx(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) idx[static_cast<size_t>(i)] = i;
  for (;;) {
    fn(idx);
    int pos = size - 1;
    while (pos >= 0 && idx[static_cast<size_t>(pos)] == pool - size + pos) --pos;
    if (pos < 0) break;
    ++idx[static_cast<size_t>(pos)];
    for (int q = pos + 1; q < size; ++q) {
      idx[static_cast<size_t>(q)] = idx[static_cast<size_t>(q - 1)] + 1;
    }
  }
}

}  // namespace

std::vector<double> MultiSellerShapleySingle(const Dataset& train,
                                             const OwnerAssignment& owners,
                                             std::span<const float> query,
                                             int test_label, double test_target,
                                             const MultiSellerShapleyOptions& options,
                                             const CorpusNorms* norms) {
  const int m = owners.NumSellers();
  const int k = options.k;
  KNNSHAP_CHECK(m >= 1 && k >= 1, "bad arguments");
  KNNSHAP_CHECK(owners.NumRows() == train.Size(), "ownership map size mismatch");

  // Per-row keys (one batched kernel pass) and per-seller rows sorted by key.
  std::vector<double> dist =
      AllDistances(train.features, query, options.metric, norms);
  auto key_of = [&](int row) {
    return RowKey{dist[static_cast<size_t>(row)], row};
  };
  std::vector<std::vector<int>> seller_rows(static_cast<size_t>(m));
  std::vector<RowKey> nearest_key(static_cast<size_t>(m));
  for (int s = 0; s < m; ++s) {
    seller_rows[static_cast<size_t>(s)] = owners.RowsOf(s);
    auto& rows = seller_rows[static_cast<size_t>(s)];
    std::sort(rows.begin(), rows.end(),
              [&](int a, int b) { return key_of(a) < key_of(b); });
    // Only the seller's K nearest rows can ever appear in a top-K set.
    if (rows.size() > static_cast<size_t>(k)) rows.resize(static_cast<size_t>(k));
    nearest_key[static_cast<size_t>(s)] = key_of(rows.front());
  }
  std::vector<RowKey> sorted_nearest = nearest_key;
  std::sort(sorted_nearest.begin(), sorted_nearest.end());
  // Number of sellers whose *nearest* row ranks strictly beyond `key`.
  auto sellers_beyond = [&](const RowKey& key) {
    auto it = std::upper_bound(sorted_nearest.begin(), sorted_nearest.end(), key);
    return static_cast<int>(sorted_nearest.end() - it);
  };

  // Enumerate A: realizable top-K patterns (plus the empty pattern).
  std::vector<TopKPattern> patterns;
  {
    TopKPattern empty;
    empty.max_key = {-std::numeric_limits<double>::infinity(), -1};
    empty.value = EvaluateUtility(train, {}, query, test_label, test_target, options);
    patterns.push_back(std::move(empty));
  }
  std::vector<int> chosen;
  std::vector<int> merged;
  for (int t = 1; t <= std::min(k, m); ++t) {
    ForEachCombination(m, t, [&](const std::vector<int>& idx) {
      // Merge the chosen sellers' rows and keep the K nearest.
      merged.clear();
      for (int s : idx) {
        const auto& rows = seller_rows[static_cast<size_t>(s)];
        merged.insert(merged.end(), rows.begin(), rows.end());
      }
      std::sort(merged.begin(), merged.end(),
                [&](int a, int b) { return key_of(a) < key_of(b); });
      if (merged.size() > static_cast<size_t>(k)) merged.resize(static_cast<size_t>(k));
      // Keep only patterns where every listed seller contributes a row;
      // coalition groups whose top-K involves fewer sellers are generated
      // by the smaller combination.
      std::vector<uint8_t> contributes(static_cast<size_t>(m), 0);
      for (int row : merged) contributes[static_cast<size_t>(owners.OwnerOf(row))] = 1;
      for (int s : idx) {
        if (!contributes[static_cast<size_t>(s)]) return;
      }
      TopKPattern pattern;
      pattern.rows = merged;
      pattern.sellers = idx;
      pattern.max_key = key_of(merged.back());
      pattern.value =
          EvaluateUtility(train, pattern.rows, query, test_label, test_target, options);
      patterns.push_back(std::move(pattern));
    });
  }

  // Group weights: weight[h][g] = sum_{t=0}^{g} binom(g,t) * (Shapley
  // kernel at coalition size h+t). Theorem 8 (data-only) vs Theorem 12
  // (composite) differ only in the kernel.
  const int max_h = std::min(k, m);
  std::vector<std::vector<double>> weight(static_cast<size_t>(max_h) + 1,
                                          std::vector<double>(static_cast<size_t>(m), 0.0));
  for (int h = 0; h <= max_h; ++h) {
    for (int g = 0; g <= m - 1 - h; ++g) {
      double total = 0.0;
      for (int t = 0; t <= g; ++t) {
        if (options.composite_game) {
          total += ChooseRatio(g, t, m, h + t + 1) / static_cast<double>(m + 1);
        } else {
          total += ChooseRatio(g, t, m - 1, h + t) / static_cast<double>(m);
        }
      }
      weight[static_cast<size_t>(h)][static_cast<size_t>(g)] = total;
    }
  }

  // Accumulate Eq (84) / Eq (96) per seller.
  std::vector<double> sv(static_cast<size_t>(m), 0.0);
  std::vector<int> with_j;
  for (int j = 0; j < m; ++j) {
    const auto& j_rows = seller_rows[static_cast<size_t>(j)];
    for (const auto& pattern : patterns) {
      if (std::binary_search(pattern.sellers.begin(), pattern.sellers.end(), j)) {
        continue;
      }
      // |G(S, j)|: sellers beyond the farthest row of S, excluding j. A
      // pattern with fewer than K rows admits no free extensions: its
      // top-K has room, so any added seller's rows enter it and change
      // the pattern (the empty pattern is the extreme case).
      int g;
      if (pattern.rows.size() < static_cast<size_t>(k)) {
        g = 0;
      } else {
        g = sellers_beyond(pattern.max_key);
        if (nearest_key[static_cast<size_t>(j)] > pattern.max_key) --g;
      }
      int h = static_cast<int>(pattern.sellers.size());
      // nu(topK(h(S) u {j})): merge S with j's rows, keep the K nearest.
      with_j = pattern.rows;
      with_j.insert(with_j.end(), j_rows.begin(), j_rows.end());
      std::sort(with_j.begin(), with_j.end(),
                [&](int a, int b) { return key_of(a) < key_of(b); });
      if (with_j.size() > static_cast<size_t>(k)) with_j.resize(static_cast<size_t>(k));
      double with_value =
          EvaluateUtility(train, with_j, query, test_label, test_target, options);
      sv[static_cast<size_t>(j)] += weight[static_cast<size_t>(h)][static_cast<size_t>(g)] *
                                    (with_value - pattern.value);
    }
  }
  return sv;
}

std::vector<double> MultiSellerShapley(const Dataset& train,
                                       const OwnerAssignment& owners,
                                       const Dataset& test,
                                       const MultiSellerShapleyOptions& options,
                                       bool parallel) {
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  const size_t m = static_cast<size_t>(owners.NumSellers());
  const CorpusNorms norms = NormsForMetric(train.features, options.metric);
  std::vector<std::vector<double>> per_test(test.Size());
  auto run_one = [&](size_t j) {
    int label = test.HasLabels() ? test.labels[j] : 0;
    double target = test.HasTargets() ? test.targets[j] : 0.0;
    per_test[j] = MultiSellerShapleySingle(train, owners, test.features.Row(j), label,
                                           target, options, &norms);
  };
  if (parallel && test.Size() > 1) {
    ThreadPool::Shared().ParallelFor(test.Size(), run_one);
  } else {
    for (size_t j = 0; j < test.Size(); ++j) run_one(j);
  }
  std::vector<double> sv(m, 0.0);
  for (const auto& row : per_test) {
    for (size_t i = 0; i < m; ++i) sv[i] += row[i];
  }
  for (auto& s : sv) s /= static_cast<double>(test.Size());
  return sv;
}

}  // namespace knnshap
