// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Ground-truth Shapley values by exhaustive enumeration of Eq (2):
//   s_i = (1/N) * sum_{S subseteq I\{i}} [nu(S u {i}) - nu(S)] / binom(N-1,|S|).
// O(2^N) utility evaluations — usable only for N <= ~20, which is exactly
// its role here: the oracle every polynomial/quasi-linear algorithm in this
// library is validated against.

#ifndef KNNSHAP_CORE_EXACT_ENUMERATION_H_
#define KNNSHAP_CORE_EXACT_ENUMERATION_H_

#include <vector>

#include "core/utility.h"

namespace knnshap {

/// Exact Shapley values of every player by full subset enumeration.
/// Requires utility.NumPlayers() <= 24 (2^24 utility evaluations).
std::vector<double> ShapleyByEnumeration(const SubsetUtility& utility);

/// Exact Shapley values by averaging marginals over *all* N! permutations
/// (Eq 3). Requires N <= 10. Slower than enumeration; kept as an
/// independent second oracle so the two formulations cross-check each
/// other in tests.
std::vector<double> ShapleyByAllPermutations(const SubsetUtility& utility);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_EXACT_ENUMERATION_H_
