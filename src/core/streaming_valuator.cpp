// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/streaming_valuator.h"

#include <algorithm>

#include "core/lsh_knn_shapley.h"
#include "dataset/contrast.h"
#include "knn/neighbors.h"
#include "lsh/tuning.h"
#include "util/common.h"

namespace knnshap {

StreamingValuator::StreamingValuator(const Dataset& corpus,
                                     const StreamingValuatorOptions& options)
    : corpus_(corpus), options_(options) {
  KNNSHAP_CHECK(corpus_.HasLabels(), "labeled corpus required");
  KNNSHAP_CHECK(corpus_.Size() >= 2, "corpus too small");
  k_star_ = KStar(options_.k, options_.epsilon);
  values_.assign(corpus_.Size(), 0.0);
  sums_.assign(corpus_.Size(), 0.0);

  // Contrast estimation against held-in corpus rows: the (K*+1)-th
  // neighbor of a corpus row skips the row itself.
  Rng rng(options_.seed);
  size_t sample = std::min(options_.contrast_sample, corpus_.Size());
  ContrastEstimate est = EstimateRelativeContrast(
      corpus_, corpus_, std::min<int>(k_star_ + 1, static_cast<int>(corpus_.Size()) - 1),
      sample, 4 * sample, &rng);
  contrast_ = est.c_k;
  if (est.d_mean > 0.0) {
    scale_ = 1.0 / est.d_mean;
    corpus_.features.Scale(scale_);
  }

  switch (options_.backend) {
    case RetrievalBackend::kBruteForce:
      break;
    case RetrievalBackend::kKdTree:
      kd_tree_ = std::make_unique<KdTree>(&corpus_.features);
      break;
    case RetrievalBackend::kLsh: {
      LshConfig config =
          TuneForContrast(corpus_.Size(), std::max(contrast_, 1.01), k_star_,
                          options_.delta, /*alpha=*/1.0, options_.seed);
      lsh_ = std::make_unique<LshIndex>(&corpus_.features, config);
      break;
    }
  }
}

std::vector<Neighbor> StreamingValuator::Retrieve(std::span<const float> query) const {
  const size_t depth = static_cast<size_t>(k_star_);
  switch (options_.backend) {
    case RetrievalBackend::kBruteForce:
      return TopKNeighbors(corpus_.features, query, depth);
    case RetrievalBackend::kKdTree:
      return kd_tree_->Query(query, depth);
    case RetrievalBackend::kLsh:
      return lsh_->Query(query, depth);
  }
  KNNSHAP_CHECK(false, "unknown backend");
}

size_t StreamingValuator::ProcessQuery(std::span<const float> query, int label) {
  KNNSHAP_CHECK(query.size() == corpus_.Dim(), "query dimension mismatch");
  // The corpus copy was rescaled; queries arrive in the original space.
  std::vector<float> scaled(query.begin(), query.end());
  for (auto& x : scaled) x = static_cast<float>(x * scale_);

  std::vector<Neighbor> neighbors = Retrieve(scaled);
  std::vector<double> by_rank =
      TruncatedShapleyFromNeighbors(corpus_, neighbors, label, options_.k, k_star_);
  ++queries_seen_;
  values_dirty_ = true;
  size_t touched = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (by_rank[i] != 0.0) {
      sums_[static_cast<size_t>(neighbors[i].index)] += by_rank[i];
      ++touched;
    }
  }
  return touched;
}

const std::vector<double>& StreamingValuator::Values() const {
  if (values_dirty_ && queries_seen_ > 0) {
    const double inv = 1.0 / static_cast<double>(queries_seen_);
    for (size_t i = 0; i < values_.size(); ++i) values_[i] = sums_[i] * inv;
    values_dirty_ = false;
  }
  return values_;
}

}  // namespace knnshap
