// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/streaming_valuator.h"

#include <algorithm>

#include "core/lsh_knn_shapley.h"
#include "knn/neighbors.h"
#include "util/common.h"

namespace knnshap {

StreamingValuator::StreamingValuator(const Dataset& corpus,
                                     const StreamingValuatorOptions& options)
    : corpus_(corpus), options_(options) {
  KNNSHAP_CHECK(corpus_.HasLabels(), "labeled corpus required");
  values_.assign(corpus_.Size(), 0.0);
  sums_.assign(corpus_.Size(), 0.0);

  LshCorpusPrep prep = PrepareCorpusForRetrieval(
      &corpus_, options_.k, options_.epsilon, options_.seed, options_.contrast_sample);
  k_star_ = prep.k_star;
  scale_ = prep.scale;
  contrast_ = prep.contrast;

  switch (options_.backend) {
    case RetrievalBackend::kBruteForce:
      norms_ = CorpusNorms(corpus_.features);
      break;
    case RetrievalBackend::kKdTree:
      kd_tree_ = std::make_unique<KdTree>(&corpus_.features);
      break;
    case RetrievalBackend::kLsh: {
      LshConfig config =
          TuneForPreparedCorpus(corpus_.Size(), prep, options_.delta, options_.seed);
      lsh_ = std::make_unique<LshIndex>(&corpus_.features, config);
      break;
    }
  }
}

std::vector<Neighbor> StreamingValuator::Retrieve(std::span<const float> query) const {
  const size_t depth = static_cast<size_t>(k_star_);
  switch (options_.backend) {
    case RetrievalBackend::kBruteForce:
      return TopKNeighbors(corpus_.features, query, depth, Metric::kL2, &norms_);
    case RetrievalBackend::kKdTree:
      return kd_tree_->Query(query, depth);
    case RetrievalBackend::kLsh:
      return lsh_->Query(query, depth);
  }
  KNNSHAP_CHECK(false, "unknown backend");
}

size_t StreamingValuator::ProcessQuery(std::span<const float> query, int label) {
  KNNSHAP_CHECK(query.size() == corpus_.Dim(), "query dimension mismatch");
  // The corpus copy was rescaled; queries arrive in the original space.
  std::vector<float> scaled(query.begin(), query.end());
  for (auto& x : scaled) x = static_cast<float>(x * scale_);

  std::vector<Neighbor> neighbors = Retrieve(scaled);
  std::vector<double> by_rank =
      TruncatedShapleyFromNeighbors(corpus_, neighbors, label, options_.k, k_star_);
  ++queries_seen_;
  values_dirty_ = true;
  size_t touched = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    if (by_rank[i] != 0.0) {
      sums_[static_cast<size_t>(neighbors[i].index)] += by_rank[i];
      ++touched;
    }
  }
  return touched;
}

const std::vector<double>& StreamingValuator::Values() const {
  if (values_dirty_ && queries_seen_ > 0) {
    const double inv = 1.0 / static_cast<double>(queries_seen_);
    for (size_t i = 0; i < values_.size(); ++i) values_[i] = sums_[i] * inv;
    values_dirty_ = false;
  }
  return values_;
}

}  // namespace knnshap
