// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Online data valuation (the use case motivating Sec 3.2): test queries
// arrive one at a time — e.g. document retrieval — and every corpus
// point's running value must be updated per query without re-sorting the
// corpus. StreamingValuator owns the retrieval structure, normalizes the
// corpus to D_mean = 1, and maintains the running mean of per-query
// Shapley contributions; by additivity the running mean after Q queries
// equals the multi-test SV over those Q queries.
//
// Three retrieval backends, all serving the truncated recursion of
// Theorem 2 at depth K* = max(K, 1/eps):
//   * kLsh     — Theorem 4, sublinear per query when contrast > 1;
//   * kKdTree  — exact K* retrieval via kd-tree [MA98];
//   * kBruteForce — exact partial selection, O(N log K*) per query.

#ifndef KNNSHAP_CORE_STREAMING_VALUATOR_H_
#define KNNSHAP_CORE_STREAMING_VALUATOR_H_

#include <memory>
#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/kd_tree.h"
#include "lsh/lsh_index.h"

namespace knnshap {

/// Retrieval structure used to find the K* nearest corpus points.
enum class RetrievalBackend {
  kBruteForce,  ///< Exact batched-kernel scan with precomputed norms.
  kKdTree,      ///< Exact kd-tree search.
  kLsh,         ///< Approximate, Theorem-3-tuned LSH.
};

/// Configuration for a StreamingValuator.
struct StreamingValuatorOptions {
  int k = 1;              ///< KNN hyperparameter.
  double epsilon = 0.1;   ///< Per-query value error budget (Theorem 2).
  double delta = 0.1;     ///< Retrieval failure probability (LSH backend).
  RetrievalBackend backend = RetrievalBackend::kLsh;
  uint64_t seed = 7;      ///< Seed for contrast estimation + hashing.
  /// Corpus rows sampled when estimating the relative contrast.
  size_t contrast_sample = 500;
};

/// Accumulates running Shapley values of a fixed labeled corpus as queries
/// stream in. Thread-compatible (one instance per thread); queries are
/// processed strictly sequentially.
class StreamingValuator {
 public:
  /// Copies and normalizes the corpus features (D_mean = 1) and builds the
  /// retrieval backend. The corpus must be labeled.
  StreamingValuator(const Dataset& corpus, const StreamingValuatorOptions& options);

  /// Processes one query with its ground-truth label; updates the running
  /// values of the touched corpus points. Returns the number of corpus
  /// points whose value changed (<= K*). O(retrieval + K*).
  size_t ProcessQuery(std::span<const float> query, int label);

  /// Running mean of per-query Shapley contributions — the (approximate)
  /// multi-test SV over all queries seen so far. Materialized lazily in
  /// O(N); ProcessQuery itself only touches the retrieved points.
  const std::vector<double>& Values() const;

  size_t QueriesSeen() const { return queries_seen_; }
  int KStarDepth() const { return k_star_; }
  double Contrast() const { return contrast_; }
  const LshConfig* LshConfiguration() const {
    return lsh_ ? &lsh_->Config() : nullptr;
  }

 private:
  std::vector<Neighbor> Retrieve(std::span<const float> query) const;

  Dataset corpus_;  // normalized private copy
  StreamingValuatorOptions options_;
  int k_star_;
  double scale_ = 1.0;     // 1 / D_mean used to normalize
  double contrast_ = 0.0;  // C_{K*} estimate
  CorpusNorms norms_;      // row norms of the normalized corpus (brute force)
  std::unique_ptr<LshIndex> lsh_;
  std::unique_ptr<KdTree> kd_tree_;
  mutable std::vector<double> values_;  // lazily refreshed running means
  mutable bool values_dirty_ = false;
  std::vector<double> sums_;            // per-point contribution sums
  size_t queries_seen_ = 0;
};

}  // namespace knnshap

#endif  // KNNSHAP_CORE_STREAMING_VALUATOR_H_
