// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/wknn_shapley.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <optional>
#include <string>

#include "knn/neighbors.h"
#include "obs/trace.h"
#include "util/binomial.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

// ---------------------------------------------------------------------------
// Coalition weights
// ---------------------------------------------------------------------------

WknnCoalitionWeights::WknnCoalitionWeights(int n, int k) : n_(n) {
  KNNSHAP_CHECK(n >= 1, "need at least one training point");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  k_ = std::min(k, n);  // top-min(K,|S|) plays as K = n beyond the corpus

  start_.resize(static_cast<size_t>(k_));
  for (int t = 0; t < k_; ++t) {
    start_[static_cast<size_t>(t)] =
        1.0 / (static_cast<double>(n) * Choose(n - 1, t));
  }

  group_.assign(static_cast<size_t>(n) + 1, 0.0);
  tail_.assign(static_cast<size_t>(n) + 1, 0.0);
  if (k_ <= n - 1) {
    // GW(q) = sum_{u=0}^{n-q} binom(n-q, u) / (n binom(n-1, u+K)), evaluated
    // with the term-ratio recurrence so no intermediate binomial overflows:
    //   term(u+1)/term(u) = (n-q-u)/(u+1) * (u+K+1)/(n-1-u-K).
    for (int q = 2; q <= n; ++q) {
      double term = 1.0 / (static_cast<double>(n) * Choose(n - 1, k_));
      double total = term;
      for (int u = 0; u < n - q && u + k_ + 1 <= n - 1; ++u) {
        term *= static_cast<double>(n - q - u) / static_cast<double>(u + 1);
        term *= static_cast<double>(u + k_ + 1) /
                static_cast<double>(n - 1 - u - k_);
        total += term;
      }
      group_[static_cast<size_t>(q)] = total;
    }
    // Tail mass of the displaced-element groups beyond rank q: the group at
    // rank q' holds binom(q'-2, K-1) companion choices of weight GW(q').
    for (int q = n - 1; q >= 0; --q) {
      tail_[static_cast<size_t>(q)] =
          tail_[static_cast<size_t>(q) + 1] +
          Choose(q - 1, k_ - 1) * group_[static_cast<size_t>(q) + 1];
    }
  }
}

int WknnCoalitionWeights::TruncationRank(double approx_error) const {
  if (approx_error <= 0.0) return n_;
  for (int q = 1; q <= n_; ++q) {
    if (tail_[static_cast<size_t>(q)] <= approx_error) return q;
  }
  return n_;
}

// ---------------------------------------------------------------------------
// Query context: ranking + discretization
// ---------------------------------------------------------------------------

WknnQueryContext MakeWknnQueryContextFromRanking(std::vector<int> order,
                                                 std::span<const double> dists,
                                                 std::span<const int> labels,
                                                 int test_label,
                                                 const WknnShapleyOptions& options) {
  const size_t n = labels.size();
  KNNSHAP_CHECK(n >= 1, "empty training set");
  KNNSHAP_CHECK(order.size() == n && dists.size() == n,
                "full ranking and row-indexed distances required");
  KNNSHAP_CHECK(options.weight_bits >= 1 && options.weight_bits <= 12,
                "weight_bits must be in [1, 12]");

  WknnQueryContext ctx;
  ctx.order = std::move(order);
  ctx.rank_of.resize(n);
  ctx.correct.resize(n);
  ctx.raw.resize(n);
  ctx.level.resize(n);
  for (size_t rank = 0; rank < n; ++rank) {
    const int row = ctx.order[rank];
    ctx.rank_of[static_cast<size_t>(row)] = static_cast<int>(rank);
    ctx.correct[rank] = labels[static_cast<size_t>(row)] == test_label ? 1 : 0;
    ctx.raw[rank] =
        RawKernelWeight(dists[static_cast<size_t>(row)], options.weights);
  }
  // Snap to the integer grid {1, ..., 2^b - 1} after scaling by the largest
  // finite raw weight. Normalization makes the scale cancel (the utility is
  // a level-sum ratio), so only the relative grid placement matters. Tiny
  // weights clamp to level 1 — the grid has no zero, mirroring the positive
  // weights ComputeWeights produces.
  const int levels = (1 << options.weight_bits) - 1;
  double vmax = 0.0;
  for (double v : ctx.raw) {
    if (std::isfinite(v) && v > vmax) vmax = v;
  }
  for (size_t rank = 0; rank < n; ++rank) {
    const double v = ctx.raw[rank];
    int level = levels;  // non-finite (infinite-kernel) weights dominate
    if (std::isfinite(v)) {
      level = vmax > 0.0
                  ? static_cast<int>(std::llround(v / vmax * levels))
                  : 1;  // degenerate all-zero kernel: equal weights
    }
    ctx.level[rank] = std::clamp(level, 1, levels);
  }
  return ctx;
}

WknnQueryContext MakeWknnQueryContext(const Dataset& train,
                                      std::span<const float> query, int test_label,
                                      const WknnShapleyOptions& options,
                                      const CorpusNorms* norms) {
  const size_t n = train.Size();
  KNNSHAP_CHECK(n >= 1, "empty training set");
  KNNSHAP_CHECK(train.HasLabels(), "weighted-fast: labeled corpus required");

  std::vector<double> dist =
      AllDistances(train.features, query, options.metric, norms);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  {
    // Ascending distance, ties by row index — the ArgsortByDistance /
    // TopKAmongRows ordering every other valuation core uses.
    ScopedPhase span(Phase::kSort);
    std::sort(order.begin(), order.end(), [&](int lhs, int rhs) {
      double dl = dist[static_cast<size_t>(lhs)];
      double dr = dist[static_cast<size_t>(rhs)];
      if (dl != dr) return dl < dr;
      return lhs < rhs;
    });
  }
  return MakeWknnQueryContextFromRanking(std::move(order), dist, train.labels,
                                         test_label, options);
}

// ---------------------------------------------------------------------------
// Discretized utility + discretization bound (oracle/test helpers)
// ---------------------------------------------------------------------------

double WknnDiscretizedUtility(const WknnQueryContext& context,
                              std::span<const int> subset, int k) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  if (subset.empty()) return 0.0;
  std::vector<int> ranks;
  ranks.reserve(subset.size());
  for (int row : subset) {
    ranks.push_back(context.rank_of[static_cast<size_t>(row)]);
  }
  std::sort(ranks.begin(), ranks.end());
  const size_t top = std::min(static_cast<size_t>(k), ranks.size());
  long a = 0;
  long b = 0;
  for (size_t i = 0; i < top; ++i) {
    const size_t rank = static_cast<size_t>(ranks[i]);
    b += context.level[rank];
    if (context.correct[rank]) a += context.level[rank];
  }
  return static_cast<double>(a) / static_cast<double>(b);
}

double WknnDiscretizationBound(const WknnQueryContext& context, int k) {
  const int n = static_cast<int>(context.order.size());
  const int kk = std::min(k, n);
  KNNSHAP_CHECK(kk >= 1, "k must be >= 1");
  KNNSHAP_CHECK(Choose(n, kk) <= 2e7,
                "discretization bound enumerates binom(N, K) top-sets; "
                "use oracle-sized fixtures");
  double worst = 0.0;
  // Every subset of <= K points is the top-K set of some coalition, so the
  // bound enumerates them all with running (continuous, discrete) sums.
  std::function<void(int, int, double, double, long, long)> visit =
      [&](int next, int depth, double araw, double braw, long a, long b) {
        if (depth > 0) {
          const double diff = std::fabs(
              araw / braw - static_cast<double>(a) / static_cast<double>(b));
          worst = std::max(worst, diff);
        }
        if (depth == kk) return;
        for (int rank = next; rank < n; ++rank) {
          const size_t idx = static_cast<size_t>(rank);
          const double raw = context.raw[idx];
          const int level = context.level[idx];
          visit(rank + 1, depth + 1,
                context.correct[idx] ? araw + raw : araw, braw + raw,
                context.correct[idx] ? a + level : a, b + level);
        }
      };
  visit(0, 0, 0.0, 0.0, 0, 0);
  // Each Shapley value averages marginals nu(S u i) - nu(S); a uniform
  // utility perturbation of eps moves every marginal by at most 2 eps.
  return 2.0 * worst;
}

// ---------------------------------------------------------------------------
// The quadratic counting recursion
// ---------------------------------------------------------------------------

namespace {

/// Per-query cap on count-table entries (~64 MB of doubles per table, a
/// few tables resident per in-flight query). One definition feeds both the
/// refusable-request check (WknnTableBudget) and the internal invariant in
/// CountTables.
constexpr double kWknnTableBudgetStates = 8e6;

/// Count tables live on the triangle 0 <= A <= B <= wmax, rows indexed by
/// companion count j. States of one B are contiguous, so the knapsack
/// updates below stream rows.
inline size_t TriIndex(int b, int a) {
  return static_cast<size_t>(b) * static_cast<size_t>(b + 1) / 2 +
         static_cast<size_t>(a);
}

/// Entry count of one (size, A, B) table for the effective K and level
/// count, in double so oversized shapes cannot overflow before the check.
double TableStates(int k_eff, int levels) {
  const double wmax = static_cast<double>(k_eff - 1) * levels;
  return static_cast<double>(k_eff) * ((wmax + 1.0) * (wmax + 2.0) / 2.0);
}

class CountTables {
 public:
  CountTables(int k, int wmax)
      : k_(k), wmax_(wmax),
        row_size_(TriIndex(wmax, wmax) + 1) {
    // Internal invariant only: every engine/serve/CLI request is screened
    // by WknnTableBudget (the weighted-fast schema precondition) before it
    // can reach this recursion, so tripping here means a direct core
    // caller skipped the budget check.
    KNNSHAP_CHECK(static_cast<double>(k_) * static_cast<double>(row_size_) <=
                      kWknnTableBudgetStates,
                  "weighted-fast count tables too large; lower k or "
                  "weight_bits (see WknnTableBudget)");
  }

  size_t Size() const { return static_cast<size_t>(k_) * row_size_; }
  size_t RowSize() const { return row_size_; }

  /// dp[j] += shift(dp[j-1]) for one inserted element (correct bit c,
  /// level w): the standard counting-knapsack update, descending j so the
  /// source row is still the pre-insertion state.
  void Insert(std::vector<double>* dp, int c, int w) const {
    const int aw = c * w;
    for (int j = k_ - 1; j >= 1; --j) {
      const double* src = dp->data() + static_cast<size_t>(j - 1) * row_size_;
      double* dst = dp->data() + static_cast<size_t>(j) * row_size_;
      for (int b = wmax_ - w; b >= 0; --b) {
        const double* srow = src + TriIndex(b, 0);
        double* drow = dst + TriIndex(b + w, aw);
        for (int a = 0; a <= b; ++a) {
          if (srow[a] != 0.0) drow[a] += srow[a];
        }
      }
    }
  }

  /// out = dp with one element (c, w) deleted — the inverse of Insert,
  /// ascending j so out[j-1] is already the deleted state. Counts are
  /// integers held in doubles, so the subtraction is exact.
  void Remove(const std::vector<double>& dp, int c, int w,
              std::vector<double>* out) const {
    std::copy(dp.begin(), dp.begin() + static_cast<ptrdiff_t>(row_size_),
              out->begin());
    const int aw = c * w;
    for (int j = 1; j <= k_ - 1; ++j) {
      const double* full = dp.data() + static_cast<size_t>(j) * row_size_;
      const double* prev = out->data() + static_cast<size_t>(j - 1) * row_size_;
      double* dst = out->data() + static_cast<size_t>(j) * row_size_;
      for (int b = 0; b <= wmax_; ++b) {
        for (int a = 0; a <= b; ++a) {
          double count = full[TriIndex(b, a)];
          const int pb = b - w;
          const int pa = a - aw;
          if (pb >= 0 && pa >= 0 && pa <= pb) count -= prev[TriIndex(pb, pa)];
          dst[TriIndex(b, a)] = count;
        }
      }
    }
  }

 private:
  int k_;
  int wmax_;
  size_t row_size_;
};

}  // namespace

Status WknnTableBudget(int n, int k, int weight_bits) {
  if (n < 1 || k < 1 || weight_bits < 1 || weight_bits > 12) {
    return Status::InvalidArgument(
        "weighted-fast needs n >= 1, k >= 1 and weight_bits in [1, 12]", "k");
  }
  const int k_eff = std::min(k, n);
  const int levels = (1 << weight_bits) - 1;
  if (TableStates(k_eff, levels) > kWknnTableBudgetStates) {
    return Status::InvalidArgument(
        "'k' too large for weighted-fast at weight_bits=" +
            std::to_string(weight_bits) +
            " on this corpus (count tables grow as K^3 4^bits; lower k or "
            "weight_bits)",
        "k");
  }
  return Status::Ok();
}

std::vector<double> WknnShapleySingle(const Dataset& train,
                                      std::span<const float> query, int test_label,
                                      const WknnShapleyOptions& options,
                                      const CorpusNorms* norms,
                                      const WknnCoalitionWeights* shared) {
  const WknnQueryContext ctx =
      MakeWknnQueryContext(train, query, test_label, options, norms);
  return WknnShapleyFromContext(ctx, options, shared);
}

std::vector<double> WknnShapleyFromContext(const WknnQueryContext& context,
                                           const WknnShapleyOptions& options,
                                           const WknnCoalitionWeights* shared) {
  const WknnQueryContext& ctx = context;
  const int n = static_cast<int>(ctx.order.size());
  KNNSHAP_CHECK(options.approx_error >= 0.0, "approx_error must be >= 0");
  std::optional<WknnCoalitionWeights> local;
  if (shared == nullptr) {
    local.emplace(n, options.k);
    shared = &*local;
  }
  KNNSHAP_CHECK(shared->N() == n && shared->K() == std::min(options.k, n),
                "coalition weights built for a different (N, K)");

  // The quadratic DP over count tables — the weighted-fast "recursion".
  ScopedPhase recursion_span(Phase::kRecursion);
  const int k = shared->K();
  const int levels = (1 << options.weight_bits) - 1;
  const int wmax = (k - 1) * levels;  // sums of at most K-1 companion levels
  const CountTables tables(k, wmax);
  const size_t row_size = tables.RowSize();

  std::vector<double> sv(static_cast<size_t>(n), 0.0);

  // --- Coalitions of size t <= K-1: everything is in the top-K of both S
  // and S u {i}. One global DP counts t-subsets of all points by level
  // sums; deleting i yields the per-point tables.
  std::vector<double> all(tables.Size(), 0.0);
  all[TriIndex(0, 0)] = 1.0;
  for (int rank = 0; rank < n; ++rank) {
    tables.Insert(&all, ctx.correct[static_cast<size_t>(rank)],
                  ctx.level[static_cast<size_t>(rank)]);
  }
  std::vector<double> without(tables.Size(), 0.0);
  const int tmax = std::min(k - 1, n - 1);
  for (int r = 1; r <= n; ++r) {
    // Per-rank cancellation poll (each r is one O(K wmax^2) DP row); the
    // partial sv is right-sized and discarded by the engine.
    if (CancelRequested()) return sv;
    const int ci = ctx.correct[static_cast<size_t>(r - 1)];
    const int wi = ctx.level[static_cast<size_t>(r - 1)];
    tables.Remove(all, ci, wi, &without);
    double acc = 0.0;
    for (int t = 0; t <= tmax; ++t) {
      const double* row = without.data() + static_cast<size_t>(t) * row_size;
      double sum = 0.0;
      for (int b = 0; b <= wmax; ++b) {
        const double* srow = row + TriIndex(b, 0);
        for (int a = 0; a <= b; ++a) {
          const double count = srow[a];
          if (count == 0.0) continue;
          const double with_i =
              static_cast<double>(a + ci * wi) / static_cast<double>(b + wi);
          const double base =
              b > 0 ? static_cast<double>(a) / static_cast<double>(b) : 0.0;
          sum += count * (with_i - base);
        }
      }
      acc += shared->StartWeight(t) * sum;
    }
    sv[static_cast<size_t>(ctx.order[static_cast<size_t>(r - 1)])] += acc;
  }

  // --- Coalitions of size t >= K, grouped by the displaced element e at
  // rank q: the K-1 shared top companions range over ranks < q (minus i),
  // counted by a prefix DP that grows one rank per step of the q loop.
  // Truncation: groups beyond rank q* carry total Shapley weight
  // TailMass(q*) <= approx_error and marginals in [-1, 1], so dropping
  // them keeps every value within the budget.
  const int q_star = shared->TruncationRank(options.approx_error);
  if (k < n) {
    std::vector<double> prefix(tables.Size(), 0.0);  // ranks 1..r-1
    prefix[TriIndex(0, 0)] = 1.0;
    std::vector<double> between(tables.Size());
    for (int r = 1; r <= n; ++r) {
      if (CancelRequested()) return sv;
      const int ci = ctx.correct[static_cast<size_t>(r - 1)];
      const int wi = ctx.level[static_cast<size_t>(r - 1)];
      if (r < q_star) {
        std::copy(prefix.begin(), prefix.end(), between.begin());
        double acc = 0.0;
        for (int q = r + 1; q <= q_star; ++q) {
          // Candidates for the K-1 companions: ranks < q except r. The
          // element at rank q-1 enters the candidate pool before rank q is
          // considered as the displaced element.
          if (q >= r + 2) {
            tables.Insert(&between, ctx.correct[static_cast<size_t>(q - 2)],
                          ctx.level[static_cast<size_t>(q - 2)]);
          }
          if (q - 2 < k - 1) continue;  // fewer than K-1 candidates
          const double gw = shared->GroupWeight(q);
          if (gw == 0.0) continue;
          const int ce = ctx.correct[static_cast<size_t>(q - 1)];
          const int we = ctx.level[static_cast<size_t>(q - 1)];
          const double* row =
              between.data() + static_cast<size_t>(k - 1) * row_size;
          double sum = 0.0;
          for (int b = 0; b <= wmax; ++b) {
            const double* srow = row + TriIndex(b, 0);
            for (int a = 0; a <= b; ++a) {
              const double count = srow[a];
              if (count == 0.0) continue;
              const double with_i = static_cast<double>(a + ci * wi) /
                                    static_cast<double>(b + wi);
              const double with_e = static_cast<double>(a + ce * we) /
                                    static_cast<double>(b + we);
              sum += count * (with_i - with_e);
            }
          }
          acc += gw * sum;
        }
        sv[static_cast<size_t>(ctx.order[static_cast<size_t>(r - 1)])] += acc;
      }
      tables.Insert(&prefix, ci, wi);
    }
  }
  return sv;
}

std::vector<double> WknnShapley(const Dataset& train, const Dataset& test,
                                const WknnShapleyOptions& options,
                                bool parallel) {
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  const size_t n = train.Size();
  const CorpusNorms norms = NormsForMetric(train.features, options.metric);
  const WknnCoalitionWeights shared(static_cast<int>(n), options.k);
  std::vector<std::vector<double>> per_test(test.Size());
  auto run_one = [&](size_t j) {
    const int label = test.HasLabels() ? test.labels[j] : 0;
    per_test[j] = WknnShapleySingle(train, test.features.Row(j), label, options,
                                    &norms, &shared);
  };
  if (parallel && test.Size() > 1) {
    ThreadPool::Shared().ParallelFor(test.Size(), run_one);
  } else {
    for (size_t j = 0; j < test.Size(); ++j) run_one(j);
  }
  std::vector<double> sv(n, 0.0);
  for (const auto& row : per_test) {
    for (size_t i = 0; i < n; ++i) sv[i] += row[i];
  }
  for (auto& s : sv) s /= static_cast<double>(test.Size());
  return sv;
}

}  // namespace knnshap
