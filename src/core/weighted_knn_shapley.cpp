// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/weighted_knn_shapley.h"

#include <algorithm>
#include <functional>

#include "knn/knn_classifier.h"
#include "knn/knn_regressor.h"
#include "knn/neighbors.h"
#include "obs/trace.h"
#include "util/binomial.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

namespace {

// Visits every `size`-combination of {0, ..., pool-1} (values are indices
// into a caller-side candidate array). Calls fn(combination).
void ForEachCombination(int pool, int size,
                        const std::function<void(const std::vector<int>&)>& fn) {
  KNNSHAP_CHECK(size >= 0 && pool >= 0, "bad combination arguments");
  if (size > pool) return;
  std::vector<int> idx(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) idx[static_cast<size_t>(i)] = i;
  for (;;) {
    fn(idx);
    // Advance to the next combination (standard odometer).
    int pos = size - 1;
    while (pos >= 0 &&
           idx[static_cast<size_t>(pos)] == pool - size + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++idx[static_cast<size_t>(pos)];
    for (int q = pos + 1; q < size; ++q) {
      idx[static_cast<size_t>(q)] = idx[static_cast<size_t>(q - 1)] + 1;
    }
  }
}

// Evaluates the weighted utility on a set of *ranks* (1-based positions in
// the distance ordering). The subset has at most K+1 elements here, so the
// evaluation is O(K log K).
class RankUtility {
 public:
  RankUtility(const Dataset& train, const std::vector<int>& order,
              std::span<const float> query, int test_label, double test_target,
              const WeightedShapleyOptions& options)
      : train_(train),
        order_(order),
        query_(query),
        test_label_(test_label),
        test_target_(test_target),
        options_(options) {}

  double operator()(const std::vector<int>& ranks) const {
    rows_.clear();
    for (int r : ranks) rows_.push_back(order_[static_cast<size_t>(r - 1)]);
    switch (options_.task) {
      case KnnTask::kWeightedClassification:
        return WeightedKnnClassUtility(train_, rows_, query_, test_label_, options_.k,
                                       options_.weights, options_.metric);
      case KnnTask::kWeightedRegression:
        return WeightedKnnRegressionUtility(train_, rows_, query_, test_target_,
                                            options_.k, options_.weights,
                                            options_.metric);
      case KnnTask::kClassification:
        return UnweightedKnnClassUtility(train_, rows_, query_, test_label_, options_.k,
                                         options_.metric);
      case KnnTask::kRegression:
        return UnweightedKnnRegressionUtility(train_, rows_, query_, test_target_,
                                              options_.k, options_.metric);
    }
    KNNSHAP_CHECK(false, "unknown task");
  }

 private:
  const Dataset& train_;
  const std::vector<int>& order_;
  std::span<const float> query_;
  int test_label_;
  double test_target_;
  const WeightedShapleyOptions& options_;
  mutable std::vector<int> rows_;
};

}  // namespace

double WeightedShapleyEvalCount(int n, int k) {
  // s_N enumeration + (N-1) adjacent pairs, each enumerating subsets of
  // sizes 0..K-1 from N-2 candidates, two evaluations per subset.
  double evals = 0.0;
  for (int t = 0; t < k; ++t) evals += 2.0 * Choose(n - 1, t);
  double per_pair = 0.0;
  for (int t = 0; t < k; ++t) per_pair += 2.0 * Choose(n - 2, t);
  return evals + static_cast<double>(n - 1) * per_pair;
}

std::vector<double> ExactWeightedKnnShapleySingle(
    const Dataset& train, std::span<const float> query, int test_label,
    double test_target, const WeightedShapleyOptions& options,
    const CorpusNorms* norms) {
  const int n = static_cast<int>(train.Size());
  const int k = options.k;
  KNNSHAP_CHECK(n >= 2, "need at least two training points");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");

  std::vector<int> order =
      ArgsortByDistance(train.features, query, options.metric, norms);
  // Everything after the ranking is coalition enumeration — the O(2^N)
  // part of the exact weighted method.
  ScopedPhase span(Phase::kRecursion);
  RankUtility nu(train, order, query, test_label, test_target, options);

  // Shapley weight of a group of coalitions in the relevant game. In the
  // data-only game a subset of size t among N-1 non-i players has weight
  // 1/(N binom(N-1, t)); in the composite game (Theorem 11) the analyst
  // must also be present, shifting the coalition size by one in an
  // (N+1)-player game: 1/((N+1) binom(N, t+1)).
  auto start_weight = [&](int t) {
    return options.composite_game
               ? 1.0 / (static_cast<double>(n + 1) * Choose(n, t + 1))
               : 1.0 / (static_cast<double>(n) * Choose(n - 1, t));
  };
  // Pair-difference weight for a singleton group of size k' (Lemma 1 and
  // its composite analog).
  auto pair_weight = [&](int t) {
    return options.composite_game
               ? 1.0 / (static_cast<double>(n) * Choose(n - 1, t + 1))
               : 1.0 / (static_cast<double>(n - 1) * Choose(n - 2, t));
  };

  std::vector<double> sv_by_rank(static_cast<size_t>(n), 0.0);

  // --- Starting point: the farthest training point (rank N). Only
  // coalitions with fewer than K data points give it nonzero marginal.
  {
    double total = 0.0;
    std::vector<int> candidate_ranks;  // every rank except N
    candidate_ranks.reserve(static_cast<size_t>(n - 1));
    for (int r = 1; r <= n - 1; ++r) candidate_ranks.push_back(r);
    std::vector<int> subset;
    for (int t = 0; t <= std::min(k - 1, n - 1); ++t) {
      double w = start_weight(t);
      ForEachCombination(n - 1, t, [&](const std::vector<int>& idx) {
        subset.clear();
        for (int q : idx) subset.push_back(candidate_ranks[static_cast<size_t>(q)]);
        double without = nu(subset);
        subset.push_back(n);
        double with_n = nu(subset);
        total += w * (with_n - without);
      });
    }
    sv_by_rank[static_cast<size_t>(n - 1)] = total;
  }

  // --- Group weight M(r) for the size-(K-1) groups, shared across pairs
  // (depends on the data only through r = max rank of S' u {i, i+1}).
  std::vector<double> group_weight(static_cast<size_t>(n) + 1, 0.0);
  if (k - 1 <= n - 2) {
    for (int r = 2; r <= n; ++r) {
      double total = 0.0;
      for (int size = k - 1; size <= n - 2; ++size) {
        double count = Choose(n - r, size - (k - 1));
        if (count == 0.0) break;  // beyond available far-ranked elements
        total += options.composite_game
                     ? count / (static_cast<double>(n) * Choose(n - 1, size + 1))
                     : count / (static_cast<double>(n - 1) * Choose(n - 2, size));
      }
      group_weight[static_cast<size_t>(r)] = total;
    }
  }

  // --- Adjacent-pair recursion from rank N-1 down to rank 1.
  std::vector<int> candidate_ranks;
  candidate_ranks.reserve(static_cast<size_t>(n - 2));
  std::vector<int> with_i, with_next;
  for (int i = n - 1; i >= 1; --i) {
    candidate_ranks.clear();
    for (int r = 1; r <= n; ++r) {
      if (r != i && r != i + 1) candidate_ranks.push_back(r);
    }
    double diff = 0.0;
    // Singleton groups: |S'| = k' <= K-2 (every coalition of that size is
    // its own group).
    for (int t = 0; t <= std::min(k - 2, n - 2); ++t) {
      double w = pair_weight(t);
      ForEachCombination(n - 2, t, [&](const std::vector<int>& idx) {
        with_i.clear();
        with_next.clear();
        for (int q : idx) {
          int r = candidate_ranks[static_cast<size_t>(q)];
          with_i.push_back(r);
          with_next.push_back(r);
        }
        with_i.push_back(i);
        with_next.push_back(i + 1);
        diff += w * (nu(with_i) - nu(with_next));
      });
    }
    // Size-(K-1) groups with the closed-form extension count M(r).
    if (k - 1 <= n - 2) {
      ForEachCombination(n - 2, k - 1, [&](const std::vector<int>& idx) {
        with_i.clear();
        with_next.clear();
        int max_rank = i + 1;
        for (int q : idx) {
          int r = candidate_ranks[static_cast<size_t>(q)];
          with_i.push_back(r);
          with_next.push_back(r);
          max_rank = std::max(max_rank, r);
        }
        with_i.push_back(i);
        with_next.push_back(i + 1);
        diff += group_weight[static_cast<size_t>(max_rank)] *
                (nu(with_i) - nu(with_next));
      });
    }
    sv_by_rank[static_cast<size_t>(i - 1)] = sv_by_rank[static_cast<size_t>(i)] + diff;
  }

  std::vector<double> sv(train.Size(), 0.0);
  for (size_t i = 0; i < order.size(); ++i) {
    sv[static_cast<size_t>(order[i])] = sv_by_rank[i];
  }
  return sv;
}

std::vector<double> ExactWeightedKnnShapley(const Dataset& train, const Dataset& test,
                                            const WeightedShapleyOptions& options,
                                            bool parallel) {
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  const size_t n = train.Size();
  const CorpusNorms norms = NormsForMetric(train.features, options.metric);
  std::vector<std::vector<double>> per_test(test.Size());
  auto run_one = [&](size_t j) {
    int label = test.HasLabels() ? test.labels[j] : 0;
    double target = test.HasTargets() ? test.targets[j] : 0.0;
    per_test[j] = ExactWeightedKnnShapleySingle(train, test.features.Row(j), label,
                                                target, options, &norms);
  };
  if (parallel && test.Size() > 1) {
    ThreadPool::Shared().ParallelFor(test.Size(), run_one);
  } else {
    for (size_t j = 0; j < test.Size(); ++j) run_one(j);
  }
  std::vector<double> sv(n, 0.0);
  for (const auto& row : per_test) {
    for (size_t i = 0; i < n; ++i) sv[i] += row[i];
  }
  for (auto& s : sv) s /= static_cast<double>(test.Size());
  return sv;
}

}  // namespace knnshap
