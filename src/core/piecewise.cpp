// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/piecewise.h"

#include <algorithm>

#include "util/binomial.h"
#include "util/common.h"

namespace knnshap {

double ShapleyDifferenceFromPiecewise(int n,
                                      const std::vector<PiecewiseGroup>& groups) {
  KNNSHAP_CHECK(n >= 2, "need at least two players");
  double total = 0.0;
  for (const auto& group : groups) {
    KNNSHAP_CHECK(static_cast<int>(group.size_counts.size()) <= n - 1,
                  "size_counts longer than N-1");
    double inner = 0.0;
    for (size_t k = 0; k < group.size_counts.size(); ++k) {
      double denom = Choose(n - 2, static_cast<int>(k));
      KNNSHAP_CHECK(denom > 0.0, "invalid subset size");
      inner += group.size_counts[k] / denom;
    }
    total += group.coefficient * inner;
  }
  return total / static_cast<double>(n - 1);
}

std::vector<double> UnweightedKnnGroupCounts(int n, int k, int i) {
  KNNSHAP_CHECK(n >= 2 && i >= 1 && i < n && k >= 1, "bad arguments");
  std::vector<double> counts(static_cast<size_t>(n - 1), 0.0);
  for (int size = 0; size <= n - 2; ++size) {
    double total = 0.0;
    int m_max = std::min(k - 1, size);
    for (int m = 0; m <= m_max; ++m) {
      total += Choose(i - 1, m) * Choose(n - i - 1, size - m);
    }
    counts[static_cast<size_t>(size)] = total;
  }
  return counts;
}

}  // namespace knnshap
