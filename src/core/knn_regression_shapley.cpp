// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/knn_regression_shapley.h"

#include <algorithm>

#include "knn/neighbors.h"
#include "obs/trace.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

std::vector<double> KnnRegressionShapleyRecursion(
    const std::vector<double>& sorted_targets, double test_target, int k) {
  const int n = static_cast<int>(sorted_targets.size());
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  KNNSHAP_CHECK(n >= k + 1, "Theorem 6 requires N >= K+1");
  const double kd = static_cast<double>(k);
  auto y = [&](int rank) { return sorted_targets[static_cast<size_t>(rank - 1)]; };

  std::vector<double> sv(static_cast<size_t>(n), 0.0);

  // Starting point s_{alpha_N} (Eq 62). The paper's formula anchors the
  // game at nu(empty) = 0; the literal Eq (25) utility has nu(empty) =
  // -y_test^2, which adds the constant -nu(empty)/N = y_test^2/N to every
  // player's Shapley value (the S = empty term of Eq 2). We include it so
  // the values are the exact SVs of the literal game, matching the
  // enumeration oracle.
  {
    double sum_rest = 0.0;
    for (int l = 1; l <= n - 1; ++l) sum_rest += y(l);
    double yn = y(n);
    double bracket = yn / kd - 2.0 * test_target + sum_rest / static_cast<double>(n - 1);
    double nu_single = yn / kd - test_target;  // KNN estimate error of {x_N} alone
    sv[static_cast<size_t>(n - 1)] =
        -(kd - 1.0) / (static_cast<double>(n) * kd) * yn * bracket -
        nu_single * nu_single / static_cast<double>(n) +
        test_target * test_target / static_cast<double>(n);
  }

  // Suffix sums Q_i = sum_{l=i+2}^{N} y_l min(K,l-1) min(K-1,l-2) /
  // ((l-1)(l-2)); Q depends on i only through its lower limit, so one
  // backward pass suffices.
  std::vector<double> q(static_cast<size_t>(n) + 3, 0.0);
  for (int l = n; l >= 3; --l) {
    double coef = static_cast<double>(std::min(k, l - 1)) *
                  static_cast<double>(std::min(k - 1, l - 2)) /
                  (static_cast<double>(l - 1) * static_cast<double>(l - 2));
    q[static_cast<size_t>(l)] = q[static_cast<size_t>(l + 1)] + y(l) * coef;
  }
  // Prefix sums P_i = sum_{l=1}^{i-1} y_l.
  double prefix = 0.0;
  std::vector<double> p(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 1; i <= n; ++i) {
    p[static_cast<size_t>(i)] = prefix;
    prefix += y(i);
  }

  // Backward recursion (Eq 63 expanded per the Appendix E.1 proof).
  for (int i = n - 1; i >= 1; --i) {
    double min_ki = static_cast<double>(std::min(k, i));
    double term_pair =
        ((y(i) + y(i + 1)) / kd - 2.0 * test_target) * min_ki / static_cast<double>(i);
    double term_prefix = 0.0;
    if (i >= 2) {
      term_prefix = (1.0 / kd) * min_ki * static_cast<double>(std::min(k - 1, i - 1)) /
                    (static_cast<double>(i - 1) * static_cast<double>(i)) *
                    p[static_cast<size_t>(i)];
    }
    double term_suffix = (1.0 / kd) * q[static_cast<size_t>(i + 2)];
    double diff = (y(i + 1) - y(i)) / kd * (term_pair + term_prefix + term_suffix);
    sv[static_cast<size_t>(i - 1)] = sv[static_cast<size_t>(i)] + diff;
  }
  return sv;
}

std::vector<double> ExactKnnRegressionShapleySingle(const Dataset& train,
                                                    std::span<const float> query,
                                                    double test_target, int k,
                                                    Metric metric,
                                                    const CorpusNorms* norms) {
  KNNSHAP_CHECK(train.HasTargets(), "targets required");
  std::vector<int> order = ArgsortByDistance(train.features, query, metric, norms);
  ScopedPhase span(Phase::kRecursion);
  std::vector<double> sorted_targets(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_targets[i] = train.targets[static_cast<size_t>(order[i])];
  }
  std::vector<double> by_rank =
      KnnRegressionShapleyRecursion(sorted_targets, test_target, k);
  std::vector<double> sv(train.Size(), 0.0);
  for (size_t i = 0; i < order.size(); ++i) {
    sv[static_cast<size_t>(order[i])] = by_rank[i];
  }
  return sv;
}

std::vector<double> ExactKnnRegressionShapley(const Dataset& train, const Dataset& test,
                                              int k, bool parallel, Metric metric) {
  KNNSHAP_CHECK(test.Size() > 0 && test.HasTargets(), "test targets required");
  const size_t n = train.Size();
  const CorpusNorms norms = NormsForMetric(train.features, metric);
  std::vector<std::vector<double>> per_test(test.Size());
  auto run_one = [&](size_t j) {
    per_test[j] = ExactKnnRegressionShapleySingle(train, test.features.Row(j),
                                                  test.targets[j], k, metric, &norms);
  };
  if (parallel && test.Size() > 1) {
    ThreadPool::Shared().ParallelFor(test.Size(), run_one);
  } else {
    for (size_t j = 0; j < test.Size(); ++j) run_one(j);
  }
  std::vector<double> sv(n, 0.0);
  for (const auto& row : per_test) {
    for (size_t i = 0; i < n; ++i) sv[i] += row[i];
  }
  for (auto& s : sv) s /= static_cast<double>(test.Size());
  return sv;
}

}  // namespace knnshap
