// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Exact Shapley values when each seller (data curator) contributes
// multiple training points (Theorem 8 / Appendix E.3) — the player is the
// seller, and a seller entering a coalition inserts *all* of their rows.
//
// Key structure: the utility of a seller coalition T depends only on
// S = the top-K rows of the union of T's data. There are at most O(M^K)
// distinct top-K sets A = { S : S-tilde <= K sellers, S = topK(their rows),
// every listed seller contributes a row }. For seller j and each S in A
// not involving j, the coalitions that realize S are h(S) plus any subset
// of G(S, j) — the sellers whose nearest row lies beyond the farthest row
// of S — giving the closed form of Eq (84):
//   s_j = (1/M) sum_{S in A\j} sum_{t=0}^{|G|} binom(|G|,t)/binom(M-1,|h(S)|+t)
//           * [nu(topK(h(S) u {j})) - nu(S)].
// Theorem 12's composite game uses 1/(M+1) and binom(M, |h(S)|+t+1).
//
// For K = 1 the set A collapses to single-seller coalitions and the method
// is O(M log M), matching the paper's remark.

#ifndef KNNSHAP_CORE_MULTI_SELLER_SHAPLEY_H_
#define KNNSHAP_CORE_MULTI_SELLER_SHAPLEY_H_

#include <span>
#include <vector>

#include "core/utility.h"
#include "dataset/dataset.h"
#include "dataset/owners.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"
#include "knn/weights.h"

namespace knnshap {

/// Options for the multi-seller exact algorithm.
struct MultiSellerShapleyOptions {
  int k = 1;
  KnnTask task = KnnTask::kClassification;
  WeightConfig weights;  ///< Used by the weighted tasks.
  Metric metric = Metric::kL2;
  /// Theorem 12 (composite game) instead of Theorem 8 (data-only game).
  bool composite_game = false;
};

/// Exact per-seller SVs for one test point. O(M^K) coalition patterns.
/// `norms` (optional) are precomputed row norms of train.features for the
/// batched distance pass.
std::vector<double> MultiSellerShapleySingle(const Dataset& train,
                                             const OwnerAssignment& owners,
                                             std::span<const float> query,
                                             int test_label, double test_target,
                                             const MultiSellerShapleyOptions& options,
                                             const CorpusNorms* norms = nullptr);

/// Exact per-seller SVs averaged over a test set.
std::vector<double> MultiSellerShapley(const Dataset& train,
                                       const OwnerAssignment& owners,
                                       const Dataset& test,
                                       const MultiSellerShapleyOptions& options,
                                       bool parallel = true);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_MULTI_SELLER_SHAPLEY_H_
