// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/exact_knn_shapley.h"

#include <algorithm>

#include "knn/neighbors.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace knnshap {

std::vector<double> KnnShapleyRecursion(const std::vector<int>& sorted_labels,
                                        int test_label, int k) {
  const int n = static_cast<int>(sorted_labels.size());
  KNNSHAP_CHECK(n >= 1, "empty training set");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  std::vector<double> sv(static_cast<size_t>(n), 0.0);
  const double kd = static_cast<double>(k);

  // Farthest point (Eq 6, generalized to K > N via min(K, N)).
  double match_n = sorted_labels[static_cast<size_t>(n - 1)] == test_label ? 1.0 : 0.0;
  sv[static_cast<size_t>(n - 1)] =
      match_n * static_cast<double>(std::min(k, n)) / (static_cast<double>(n) * kd);

  // Backward recursion (Eq 7); i below is the 1-based rank.
  for (int i = n - 1; i >= 1; --i) {
    double match_i = sorted_labels[static_cast<size_t>(i - 1)] == test_label ? 1.0 : 0.0;
    double match_next = sorted_labels[static_cast<size_t>(i)] == test_label ? 1.0 : 0.0;
    sv[static_cast<size_t>(i - 1)] =
        sv[static_cast<size_t>(i)] +
        (match_i - match_next) / kd * static_cast<double>(std::min(k, i)) /
            static_cast<double>(i);
  }
  return sv;
}

std::vector<double> KnnShapleyClosedForm(const std::vector<int>& sorted_labels,
                                         int test_label, int k) {
  const int n = static_cast<int>(sorted_labels.size());
  KNNSHAP_CHECK(n >= 1 && k >= 1, "bad arguments");
  std::vector<double> sv(static_cast<size_t>(n), 0.0);
  auto match = [&](int rank) {  // rank is 1-based
    return sorted_labels[static_cast<size_t>(rank - 1)] == test_label ? 1.0 : 0.0;
  };
  // Suffix sums T(i) = sum_{j=i+1}^{N} 1[y_j = y]/(j (j-1)), per Eq (45).
  std::vector<double> suffix(static_cast<size_t>(n) + 2, 0.0);
  for (int j = n; j >= 2; --j) {
    suffix[static_cast<size_t>(j - 1)] =
        suffix[static_cast<size_t>(j)] +
        match(j) / (static_cast<double>(j) * static_cast<double>(j - 1));
  }
  const int kc = std::min(k, n);
  for (int i = 1; i <= n; ++i) {
    if (i >= k) {
      // Eq (45) (covers i = N since the suffix there is empty).
      sv[static_cast<size_t>(i - 1)] =
          match(i) / static_cast<double>(i) - suffix[static_cast<size_t>(i)];
    } else {
      // Eq (46); the suffix starts at min(K, N) so that K > N degenerates
      // to s_i = 1[y_i = y]/K, matching the recursion.
      sv[static_cast<size_t>(i - 1)] =
          match(i) / static_cast<double>(k) - suffix[static_cast<size_t>(kc)];
    }
  }
  return sv;
}

std::vector<double> ExactKnnShapleyFromOrder(std::span<const int> order,
                                             std::span<const int> labels,
                                             int test_label, int k) {
  // Span covers ranking-to-SV work: label gather, recursion, scatter.
  ScopedPhase span(Phase::kRecursion);
  std::vector<int> sorted_labels(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_labels[i] = labels[static_cast<size_t>(order[i])];
  }
  std::vector<double> by_rank = KnnShapleyRecursion(sorted_labels, test_label, k);
  std::vector<double> sv(labels.size(), 0.0);
  for (size_t i = 0; i < order.size(); ++i) {
    sv[static_cast<size_t>(order[i])] = by_rank[i];
  }
  return sv;
}

std::vector<double> ExactKnnShapleySingle(const Dataset& train,
                                          std::span<const float> query, int test_label,
                                          int k, Metric metric,
                                          const CorpusNorms* norms) {
  KNNSHAP_CHECK(train.HasLabels(), "labels required");
  // Per-thread order scratch: the engine drives many queries per pool
  // thread and the N-int ranking would otherwise be reallocated per query.
  static thread_local std::vector<int> order;
  ArgsortByDistanceInto(train.features, query, metric, norms, &order);
  // Cancellation poll between the ranking and the SV recursion: skip the
  // recursion, return right-sized zeros (the engine discards them).
  if (CancelRequested()) return std::vector<double>(train.Size(), 0.0);
  return ExactKnnShapleyFromOrder(order, train.labels, test_label, k);
}

size_t TruncatedExactEffectiveRank(size_t r, size_t n, int k) {
  // The i < K branch of Eq (46) reads the suffix at rank min(K, N), so the
  // prefix must reach it.
  return std::max(r, std::min(static_cast<size_t>(k), n));
}

std::vector<double> TruncatedExactKnnShapleyFromOrder(
    std::span<const int> order_prefix, std::span<const int> labels,
    int test_label, int k, size_t n) {
  ScopedPhase span(Phase::kRecursion);
  const size_t r = order_prefix.size();
  auto match = [&](int rank) {  // rank is 1-based, within the prefix
    const int row = order_prefix[static_cast<size_t>(rank - 1)];
    return labels[static_cast<size_t>(row)] == test_label ? 1.0 : 0.0;
  };
  // Truncated suffix sums T^(i) = sum_{j=i+1}^{r} 1[y_j = y]/(j (j-1));
  // the dropped tail is sum_{j>r} 1/(j(j-1)) <= 1/r - 1/N at most.
  const int ri = static_cast<int>(r);
  std::vector<double> suffix(r + 1, 0.0);
  for (int j = ri; j >= 2; --j) {
    suffix[static_cast<size_t>(j - 1)] =
        suffix[static_cast<size_t>(j)] +
        match(j) / (static_cast<double>(j) * static_cast<double>(j - 1));
  }
  // k <= r < n here, so min(K, N) = k.
  std::vector<double> sv(n, 0.0);
  for (int i = 1; i <= ri; ++i) {
    const double value =
        i >= k ? match(i) / static_cast<double>(i) - suffix[static_cast<size_t>(i)]
               : match(i) / static_cast<double>(k) - suffix[static_cast<size_t>(k)];
    sv[static_cast<size_t>(order_prefix[static_cast<size_t>(i - 1)])] = value;
  }
  return sv;
}

std::vector<double> TruncatedExactKnnShapleySingle(const Dataset& train,
                                                   std::span<const float> query,
                                                   int test_label, int k, size_t r,
                                                   Metric metric,
                                                   const CorpusNorms* norms) {
  KNNSHAP_CHECK(train.HasLabels(), "labels required");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  const size_t n = train.Size();
  // Once r covers every rank the truncation is the exact computation —
  // delegate so the two paths cannot drift.
  r = TruncatedExactEffectiveRank(r, n, k);
  if (r >= n) {
    return ExactKnnShapleySingle(train, query, test_label, k, metric, norms);
  }
  static thread_local std::vector<int> order;
  TopROrderByDistance(train.features, query, r, metric, norms, &order);
  if (CancelRequested()) return std::vector<double>(n, 0.0);
  return TruncatedExactKnnShapleyFromOrder(order, train.labels, test_label, k, n);
}

double TruncatedExactKnnShapleyBound(size_t r, size_t n) {
  if (n == 0 || r >= n) return 0.0;
  r = std::max<size_t>(r, 1);
  const double head = 1.0 / static_cast<double>(r) - 1.0 / static_cast<double>(n);
  const double tail = 1.0 / static_cast<double>(r + 1);
  return std::max(head, tail);
}

std::vector<double> ExactKnnShapley(const Dataset& train, const Dataset& test, int k,
                                    bool parallel, Metric metric) {
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  KNNSHAP_CHECK(test.HasLabels(), "test labels required");
  const size_t n = train.Size();
  const size_t num_tests = test.Size();
  // Row norms are shared by every query (and every pool thread) below.
  const CorpusNorms norms = NormsForMetric(train.features, metric);
  std::vector<std::vector<double>> per_test(num_tests);
  auto run_one = [&](size_t j) {
    per_test[j] = ExactKnnShapleySingle(train, test.features.Row(j), test.labels[j], k,
                                        metric, &norms);
  };
  if (parallel && num_tests > 1) {
    ThreadPool::Shared().ParallelFor(num_tests, run_one);
  } else {
    for (size_t j = 0; j < num_tests; ++j) run_one(j);
  }
  std::vector<double> sv(n, 0.0);
  for (const auto& row : per_test) {
    for (size_t i = 0; i < n; ++i) sv[i] += row[i];
  }
  for (auto& s : sv) s /= static_cast<double>(num_tests);
  return sv;
}

}  // namespace knnshap
