// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Sample-complexity bounds for permutation-sampling Shapley estimation.
//
//  * Hoeffding (baseline, Sec 2.2 / [MTTH+13]): T >= r^2/(2 eps^2) log(2N/delta).
//  * Bennett (Theorem 5): exploits that for KNN the marginal phi_i is zero
//    with probability q_i = (i-K)/i for i > K, so Var[phi_i] <=
//    (1-q_i^2) r^2. T* solves
//      sum_{i=1}^{N} exp(-T (1-q_i^2) h(eps / ((1-q_i^2) r))) = delta / 2
//    with h(u) = (1+u) log(1+u) - u; T* is N-independent in the large-N
//    limit (Fig 11).
//  * Approximate closed form (Eq 133-134): T~ = log(2K/delta) / h(eps/r),
//    lower-bounded by r^2/eps^2 log(2K/delta) (Eq 135).

#ifndef KNNSHAP_CORE_BENNETT_H_
#define KNNSHAP_CORE_BENNETT_H_

#include <cstdint>

namespace knnshap {

/// h(u) = (1+u) log(1+u) - u, the Bennett rate function (u >= 0).
double BennettH(double u);

/// Baseline permutation count from Hoeffding's inequality. `range` is the
/// range r of the utility difference (1/K for the unweighted KNN
/// classifier; twice the utility range in general).
int64_t HoeffdingPermutations(int64_t n, double epsilon, double delta, double range);

/// T* of Theorem 5, solved numerically (bisection; the left side of Eq 32
/// is strictly decreasing in T).
int64_t BennettPermutations(int64_t n, int k, double epsilon, double delta,
                            double range);

/// The closed-form approximation T~ of Eq (134).
int64_t ApproxBennettPermutations(int k, double epsilon, double delta, double range);

/// The simplified lower bound r^2/eps^2 log(2K/delta) of Eq (135).
double BennettLowerBound(int k, double epsilon, double delta, double range);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_BENNETT_H_
