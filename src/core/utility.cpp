// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/utility.h"

#include <algorithm>
#include <numeric>

#include "util/common.h"

namespace knnshap {

double SubsetUtility::GrandValue() const {
  std::vector<int> everyone(static_cast<size_t>(NumPlayers()));
  std::iota(everyone.begin(), everyone.end(), 0);
  return Value(everyone);
}

KnnSubsetUtility::KnnSubsetUtility(const Dataset* train, const Dataset* test, int k,
                                   KnnTask task, WeightConfig weights)
    : train_(train), test_(test), k_(k), task_(task), weights_(weights) {
  KNNSHAP_CHECK(train != nullptr && test != nullptr, "null dataset");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  KNNSHAP_CHECK(test->Size() > 0, "empty test set");
  if (task == KnnTask::kClassification || task == KnnTask::kWeightedClassification) {
    KNNSHAP_CHECK(train->HasLabels() && test->HasLabels(), "labels required");
  } else {
    KNNSHAP_CHECK(train->HasTargets() && test->HasTargets(), "targets required");
  }
}

int KnnSubsetUtility::NumPlayers() const { return static_cast<int>(train_->Size()); }

double KnnSubsetUtility::Value(std::span<const int> subset) const {
  double total = 0.0;
  for (size_t j = 0; j < test_->Size(); ++j) {
    auto query = test_->features.Row(j);
    switch (task_) {
      case KnnTask::kClassification:
        total += UnweightedKnnClassUtility(*train_, subset, query, test_->labels[j], k_);
        break;
      case KnnTask::kWeightedClassification:
        total += WeightedKnnClassUtility(*train_, subset, query, test_->labels[j], k_,
                                         weights_);
        break;
      case KnnTask::kRegression:
        total += UnweightedKnnRegressionUtility(*train_, subset, query,
                                                test_->targets[j], k_);
        break;
      case KnnTask::kWeightedRegression:
        total += WeightedKnnRegressionUtility(*train_, subset, query,
                                              test_->targets[j], k_, weights_);
        break;
    }
  }
  return total / static_cast<double>(test_->Size());
}

SellerSubsetUtility::SellerSubsetUtility(const SubsetUtility* base,
                                         const OwnerAssignment* owners)
    : base_(base), owners_(owners) {
  KNNSHAP_CHECK(base != nullptr && owners != nullptr, "null argument");
  KNNSHAP_CHECK(static_cast<size_t>(base->NumPlayers()) == owners->NumRows(),
                "ownership map size mismatch");
}

int SellerSubsetUtility::NumPlayers() const { return owners_->NumSellers(); }

double SellerSubsetUtility::Value(std::span<const int> sellers) const {
  std::vector<int> rows =
      owners_->RowsOfSellers(std::vector<int>(sellers.begin(), sellers.end()));
  return base_->Value(rows);
}

CompositeSubsetUtility::CompositeSubsetUtility(const SubsetUtility* base)
    : base_(base) {
  KNNSHAP_CHECK(base != nullptr, "null base utility");
}

int CompositeSubsetUtility::NumPlayers() const { return base_->NumPlayers() + 1; }

double CompositeSubsetUtility::Value(std::span<const int> subset) const {
  const int analyst = AnalystId();
  bool has_analyst = false;
  std::vector<int> sellers;
  sellers.reserve(subset.size());
  for (int p : subset) {
    if (p == analyst) {
      has_analyst = true;
    } else {
      sellers.push_back(p);
    }
  }
  // Eq (28): data without computation (or computation without data) is
  // worth nothing.
  if (!has_analyst || sellers.empty()) return 0.0;
  return base_->Value(sellers);
}

CallableUtility::CallableUtility(int num_players,
                                 std::function<double(std::span<const int>)> fn)
    : num_players_(num_players), fn_(std::move(fn)) {
  KNNSHAP_CHECK(num_players >= 1, "need at least one player");
  KNNSHAP_CHECK(fn_ != nullptr, "null utility callable");
}

int CallableUtility::NumPlayers() const { return num_players_; }

double CallableUtility::Value(std::span<const int> subset) const { return fn_(subset); }

}  // namespace knnshap
