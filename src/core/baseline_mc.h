// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The baseline Monte-Carlo Shapley estimator (Sec 2.2, Eq 4): sample
// uniform permutations, accumulate each player's marginal contribution
// along the permutation, and average. Each prefix utility is evaluated
// from scratch through SubsetUtility::Value — for KNN that re-sorts the
// prefix, reproducing the O(N^2 log N (r^2/eps^2) log(N/delta)) cost the
// paper assigns to this baseline.

#ifndef KNNSHAP_CORE_BASELINE_MC_H_
#define KNNSHAP_CORE_BASELINE_MC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/utility.h"

namespace knnshap {

/// Options for the baseline estimator.
struct BaselineMcOptions {
  double epsilon = 0.1;
  double delta = 0.1;
  /// Range r of the utility difference phi_i (1/K for the unweighted KNN
  /// classifier; conservatively the utility range otherwise).
  double utility_range = 1.0;
  /// Cap on permutations; <0 means "use the Hoeffding bound".
  int64_t max_permutations = -1;
  uint64_t seed = 1;
  /// Invoked after every `snapshot_every` permutations with (t, current
  /// estimate); 0 disables. Used by the Fig 5 convergence study.
  int64_t snapshot_every = 0;
  std::function<void(int64_t, const std::vector<double>&)> snapshot;
};

/// Result of a Monte-Carlo Shapley run.
struct McEstimate {
  std::vector<double> shapley;
  int64_t permutations = 0;
  int64_t utility_evaluations = 0;
  /// Player insertions skipped by TMC truncation (improved MC only).
  int64_t truncated_insertions = 0;
};

/// Runs the baseline estimator until the Hoeffding permutation count (or
/// the explicit cap) is reached.
McEstimate BaselineMcShapley(const SubsetUtility& utility,
                             const BaselineMcOptions& options);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_BASELINE_MC_H_
