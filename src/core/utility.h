// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The cooperative-game utility abstraction (Sec 2.1). A SubsetUtility maps
// a coalition of players to a real value nu(S). The enumeration oracle and
// both Monte-Carlo estimators are generic over this interface; the concrete
// implementations wire it to the KNN utilities of Eq (5)/(8)/(25)/(26)/(27),
// to seller-level games (App E.3), and to the composite data+analyst game
// (Eq 28).
//
// Calling Value() re-ranks the subset from scratch — deliberately so: this
// is exactly the "retrain the model on S" cost model of the baseline
// algorithm in Sec 2.2. The improved MC algorithm avoids it via the
// incremental interface in core/improved_mc.h.

#ifndef KNNSHAP_CORE_UTILITY_H_
#define KNNSHAP_CORE_UTILITY_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/owners.h"
#include "knn/knn_classifier.h"
#include "knn/knn_regressor.h"

namespace knnshap {

/// A cooperative game: NumPlayers() players, Value(S) utility of coalition S.
class SubsetUtility {
 public:
  virtual ~SubsetUtility() = default;

  /// Number of players N in the game.
  virtual int NumPlayers() const = 0;

  /// Utility of the coalition (player ids, no duplicates, any order).
  virtual double Value(std::span<const int> subset) const = 0;

  /// Utility of the grand coalition.
  double GrandValue() const;
};

/// Which KNN utility family to evaluate.
enum class KnnTask {
  kClassification,          ///< Eq (5)/(8), unweighted.
  kWeightedClassification,  ///< Eq (26).
  kRegression,              ///< Eq (25), unweighted (negative squared error).
  kWeightedRegression,      ///< Eq (27).
};

/// KNN utility over an explicit test set; the multi-test utility is the
/// mean of per-test utilities (Eq 8), matching the additivity decomposition
/// the exact algorithms exploit. Players are training rows.
class KnnSubsetUtility : public SubsetUtility {
 public:
  /// Both datasets must outlive the utility. `k >= 1`.
  KnnSubsetUtility(const Dataset* train, const Dataset* test, int k, KnnTask task,
                   WeightConfig weights = {});

  int NumPlayers() const override;
  double Value(std::span<const int> subset) const override;

  int K() const { return k_; }
  KnnTask Task() const { return task_; }

 private:
  const Dataset* train_;
  const Dataset* test_;
  int k_;
  KnnTask task_;
  WeightConfig weights_;
};

/// Seller-level game (App E.3): player j controls all rows of seller j; the
/// utility of a seller coalition is the row-level utility of the union of
/// their rows.
class SellerSubsetUtility : public SubsetUtility {
 public:
  /// `base` players must be training rows of the assignment's dataset.
  SellerSubsetUtility(const SubsetUtility* base, const OwnerAssignment* owners);

  int NumPlayers() const override;
  double Value(std::span<const int> sellers) const override;

 private:
  const SubsetUtility* base_;
  const OwnerAssignment* owners_;
};

/// Composite game (Eq 28): players 0..N-1 are the base game's players and
/// player N is the analyst C. nu_c(S) = 0 if S excludes the analyst or
/// contains only the analyst; otherwise nu(S \ {C}).
class CompositeSubsetUtility : public SubsetUtility {
 public:
  explicit CompositeSubsetUtility(const SubsetUtility* base);

  int NumPlayers() const override;
  double Value(std::span<const int> subset) const override;

  /// Id of the analyst player.
  int AnalystId() const { return base_->NumPlayers(); }

 private:
  const SubsetUtility* base_;
};

/// Adapts an arbitrary callable to SubsetUtility (used to value non-KNN
/// models, e.g. the logistic-regression game of Fig 16, and in tests).
class CallableUtility : public SubsetUtility {
 public:
  CallableUtility(int num_players, std::function<double(std::span<const int>)> fn);

  int NumPlayers() const override;
  double Value(std::span<const int> subset) const override;

 private:
  int num_players_;
  std::function<double(std::span<const int>)> fn_;
};

}  // namespace knnshap

#endif  // KNNSHAP_CORE_UTILITY_H_
