// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/bennett.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/common.h"

namespace knnshap {

double BennettH(double u) {
  KNNSHAP_CHECK(u >= 0.0, "h(u) requires u >= 0");
  return (1.0 + u) * std::log1p(u) - u;
}

int64_t HoeffdingPermutations(int64_t n, double epsilon, double delta, double range) {
  KNNSHAP_CHECK(n >= 1 && epsilon > 0.0 && delta > 0.0 && delta < 1.0 && range > 0.0,
                "bad arguments");
  double t = range * range / (2.0 * epsilon * epsilon) *
             std::log(2.0 * static_cast<double>(n) / delta);
  return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(t)));
}

int64_t BennettPermutations(int64_t n, int k, double epsilon, double delta,
                            double range) {
  KNNSHAP_CHECK(n >= 1 && k >= 1 && epsilon > 0.0 && delta > 0.0 && delta < 1.0 &&
                    range > 0.0,
                "bad arguments");
  // Per-index decay rates a_i = (1 - q_i^2) h(eps / ((1 - q_i^2) r)) with
  // q_i = 0 for i <= K and (i-K)/i beyond (Eq 33). The first K indices
  // share a rate; the rest are computed individually.
  std::vector<double> rates;
  rates.reserve(static_cast<size_t>(std::min<int64_t>(n, 1 << 22)));
  double head_rate = BennettH(epsilon / range);  // q = 0.
  auto lhs = [&](double t) {
    double total = static_cast<double>(std::min<int64_t>(n, k)) *
                   std::exp(-t * head_rate);
    for (double a : rates) total += std::exp(-t * a);
    return total;
  };
  for (int64_t i = static_cast<int64_t>(k) + 1; i <= n; ++i) {
    double q = static_cast<double>(i - k) / static_cast<double>(i);
    double v = 1.0 - q * q;  // variance factor (1 - q_i^2)
    rates.push_back(v * BennettH(epsilon / (v * range)));
  }
  // Bisection on T: lhs is strictly decreasing from N (at T=0) to 0.
  double target = delta / 2.0;
  double lo = 0.0, hi = 1.0;
  while (lhs(hi) > target) {
    hi *= 2.0;
    KNNSHAP_CHECK(hi < 1e18, "Bennett bisection diverged");
  }
  for (int iter = 0; iter < 200 && hi - lo > 0.5; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (lhs(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(hi)));
}

int64_t ApproxBennettPermutations(int k, double epsilon, double delta, double range) {
  KNNSHAP_CHECK(k >= 1 && epsilon > 0.0 && delta > 0.0 && delta < 1.0 && range > 0.0,
                "bad arguments");
  double t = std::log(2.0 * static_cast<double>(k) / delta) / BennettH(epsilon / range);
  return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(t)));
}

double BennettLowerBound(int k, double epsilon, double delta, double range) {
  return range * range / (epsilon * epsilon) *
         std::log(2.0 * static_cast<double>(k) / delta);
}

}  // namespace knnshap
