// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The composite data + computation game (Sec 4 "Valuing Computation",
// Appendix E.4). Players are the N data sellers plus one analyst C; the
// utility nu_c (Eq 28) is zero unless the coalition contains the analyst
// *and* at least one seller, in which case it equals the data-only utility
// of the sellers present.
//
// Theorems 9-12 give closed forms for the sellers' values in each model
// family; the analyst receives the remainder nu(I) - sum_i s_i (group
// rationality), which Theorem 9's ratio analysis shows is at least half of
// the total utility.

#ifndef KNNSHAP_CORE_COMPOSITE_GAME_H_
#define KNNSHAP_CORE_COMPOSITE_GAME_H_

#include <span>
#include <vector>

#include "core/utility.h"
#include "dataset/dataset.h"
#include "dataset/owners.h"
#include "knn/metric.h"
#include "knn/weights.h"

namespace knnshap {

/// Result of a composite-game valuation.
struct CompositeShapleyResult {
  std::vector<double> seller_values;  ///< SV per training row (or per seller).
  double analyst_value = 0.0;         ///< SV of the analyst C.
  double total_utility = 0.0;         ///< nu(I): utility of the grand coalition.
};

/// Theorem 9: composite-game SVs for the unweighted KNN classifier, per
/// test point in O(N log N):
///   s_{alpha_N} = 1[y=y_test] (min(N,K)+1) / (2 N (N+1))
///   s_{alpha_i} = s_{alpha_{i+1}} + (1[y_i]-1[y_{i+1}])/K
///                 * min(i,K)(min(i,K)+1) / (2 i (i+1))
///   s_C = nu(I) - sum_i s_i.
CompositeShapleyResult CompositeKnnShapley(const Dataset& train, const Dataset& test,
                                           int k, bool parallel = true,
                                           Metric metric = Metric::kL2);

/// Theorem 9 recursion on a pre-sorted label sequence (rank order).
/// Returns seller values only; exposed for tests.
std::vector<double> CompositeKnnShapleyRecursion(const std::vector<int>& sorted_labels,
                                                 int test_label, int k);

/// Theorem 10: composite-game SVs for unweighted KNN regression.
CompositeShapleyResult CompositeKnnRegressionShapley(const Dataset& train,
                                                     const Dataset& test, int k,
                                                     bool parallel = true,
                                                     Metric metric = Metric::kL2);

/// Theorem 10 recursion on pre-sorted targets (rank order); seller values.
std::vector<double> CompositeKnnRegressionShapleyRecursion(
    const std::vector<double>& sorted_targets, double test_target, int k);

/// Theorem 11: composite-game SVs for weighted KNN (classification or
/// regression), O(N^K) via the weighted exact machinery.
CompositeShapleyResult CompositeWeightedKnnShapley(const Dataset& train,
                                                   const Dataset& test, int k,
                                                   const WeightConfig& weights,
                                                   KnnTask task,
                                                   bool parallel = true,
                                                   Metric metric = Metric::kL2);

/// Theorem 12: composite-game SVs per *seller* in the multi-data-per-seller
/// setting, O(M^K).
CompositeShapleyResult CompositeMultiSellerShapley(const Dataset& train,
                                                   const OwnerAssignment& owners,
                                                   const Dataset& test, int k,
                                                   KnnTask task,
                                                   const WeightConfig& weights = {},
                                                   bool parallel = true,
                                                   Metric metric = Metric::kL2);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_COMPOSITE_GAME_H_
