// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Quadratic-time Shapley values for weighted KNN classification with
// discretized weights — the WKNN-Shapley of Wang, Mittal & Jia
// (arXiv:2401.11103), adapted to this library's weighted utility (Eq 26).
//
// The source paper's weighted extension (Theorem 7, core/weighted_knn_
// shapley.h) costs O(N^K) per query because the weighted utility is no
// longer a function of label counts alone. Following arXiv:2401.11103, the
// cure is to value the *discretized-weight* classifier instead: each
// neighbor's raw kernel weight is snapped to one of 2^b - 1 positive
// integer levels, so the utility of any coalition is determined by two
// bounded integers — the level sum A of the correctly-labeled top-K
// members and the level sum B of all top-K members (the normalized Eq-26
// utility is A/B; normalization makes the common scale cancel). Computing
// the SV then reduces to *counting* coalitions by (A, B) composition
// instead of enumerating them, and the count tables admit an O(N^2)-time
// recursion over the ranked neighbors.
//
// Per test point, with points indexed by ascending distance rank:
//   * coalitions of size t <= K-1 sit entirely inside the top-K of both S
//     and S u {i}; a single knapsack DP over all points counts them by
//     (t, A, B), and removing point i from the DP yields the exact
//     marginal-gain sum for every i in O(K W) where W is the number of
//     (A, B) states;
//   * coalitions of size t >= K are grouped by their "displaced" element e
//     — the K-th nearest member of S that drops out of the top-K when i
//     joins. Fixing e at rank q, the other K-1 top members P range over
//     ranks < q, every choice of farther-ranked extras shares the same
//     marginal, and the group's total Shapley weight has the closed form
//       GW(q) = sum_{t>=K} binom(N-q, t-K) / (N binom(N-1, t)).
//     A prefix DP over ranks counts P by (A, B); iterating q outward per i
//     reuses it incrementally, for O(N) DP updates per point.
// Total: O(N^2 K W) per query versus O(N^K) — exact for the discretized
// game, and within a computable bound of the continuous Theorem-7 values.
//
// The deterministic approximation (`approx_error` > 0) truncates the
// displaced-element recursion at the smallest rank q* whose tail mass
//   Tail(q*) = sum_{q > q*} binom(q-2, K-1) GW(q)
// is at most the budget: the discarded groups' Shapley weights sum to
// Tail(q*) and each group's marginal lies in [-1, 1], so the per-point
// error bounds are subadditive over the dropped groups and the result is
// within `approx_error` of the exact discretized SV in l-infinity — a
// deterministic guarantee, unlike the Monte-Carlo estimators.

#ifndef KNNSHAP_CORE_WKNN_SHAPLEY_H_
#define KNNSHAP_CORE_WKNN_SHAPLEY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"
#include "knn/weights.h"
#include "util/status.h"

namespace knnshap {

/// Options for the quadratic-time discretized WKNN-Shapley.
struct WknnShapleyOptions {
  int k = 3;                    ///< KNN hyperparameter.
  WeightConfig weights;         ///< Raw neighbor weight kernel (Eq 26).
  Metric metric = Metric::kL2;
  /// Discretization width b: raw kernel weights are snapped to the integer
  /// grid {1, ..., 2^b - 1} after scaling by the per-query maximum. Larger
  /// b tracks the continuous weights more closely but grows the (A, B)
  /// count tables as 4^b. The paper finds b = 3 ample for valuation ranks.
  int weight_bits = 3;
  /// l-infinity truncation budget for the deterministic approximation;
  /// 0 computes the exact discretized SV.
  double approx_error = 0.0;
};

/// The closed-form coalition weights of the counting recursion for an
/// (n, k) game: start weights 1/(n binom(n-1, t)) for the small-coalition
/// case, group weights GW(q) for the displaced-element groups, and the
/// truncation tail masses. Depends only on (n, k) — the engine adapter
/// builds one at Fit() and shares it across every query on the corpus.
class WknnCoalitionWeights {
 public:
  WknnCoalitionWeights(int n, int k);

  int N() const { return n_; }
  /// Effective K: min(k, n) — a K beyond the corpus size plays as K = n.
  int K() const { return k_; }

  /// Shapley weight of one size-t coalition, t <= K-1.
  double StartWeight(int t) const { return start_[static_cast<size_t>(t)]; }
  /// Total Shapley weight of the displaced-element group at rank q
  /// (2 <= q <= n): all extensions of a fixed top-K by farther ranks.
  double GroupWeight(int q) const { return group_[static_cast<size_t>(q)]; }
  /// Tail mass dropped when the displaced recursion stops after rank q —
  /// the l-infinity error bound of the truncated SV.
  double TailMass(int q) const { return tail_[static_cast<size_t>(q)]; }
  /// Smallest q* with TailMass(q*) <= approx_error (n when exact).
  int TruncationRank(double approx_error) const;

 private:
  int n_;
  int k_;
  std::vector<double> start_;  ///< [t], t = 0..k_-1.
  std::vector<double> group_;  ///< [q], q = 0..n_ (0, 1 unused).
  std::vector<double> tail_;   ///< [q], tail_[n_] = 0.
};

/// Per-query ranked-neighbor structure: the distance ordering, each
/// point's correctness bit, and its raw and discretized kernel weights.
/// Shared by the SV recursion, the discretized utility evaluator and the
/// discretization bound, so all three agree on ranking and grid.
struct WknnQueryContext {
  std::vector<int> order;       ///< rank (0-based) -> training row.
  std::vector<int> rank_of;     ///< training row -> rank (0-based).
  std::vector<uint8_t> correct; ///< by rank: label matches the test label.
  std::vector<int> level;       ///< by rank: discrete weight in 1..2^b - 1.
  std::vector<double> raw;      ///< by rank: continuous kernel weight.
};

/// Ranks, correctness bits and (raw, discretized) weights for one query.
/// `norms` (optional) are precomputed row norms of train.features.
WknnQueryContext MakeWknnQueryContext(const Dataset& train,
                                      std::span<const float> query, int test_label,
                                      const WknnShapleyOptions& options,
                                      const CorpusNorms* norms = nullptr);

/// Same context built from an externally supplied full ranking: `order`
/// must be every training row ascending by (dists[row], row) — e.g. a
/// per-shard candidate merge — and `dists` the row-indexed raw distances
/// that produced it (the kernel weights need the exact doubles).
/// Bit-identical to MakeWknnQueryContext on the ranking and distances it
/// would compute itself.
WknnQueryContext MakeWknnQueryContextFromRanking(std::vector<int> order,
                                                 std::span<const double> dists,
                                                 std::span<const int> labels,
                                                 int test_label,
                                                 const WknnShapleyOptions& options);

/// The discretized weighted utility nu-hat(S): level-sum ratio A/B over the
/// top-min(K,|S|) of `subset` (training-row ids). The ground-truth
/// evaluator the enumeration oracle uses to pin the recursion.
double WknnDiscretizedUtility(const WknnQueryContext& context,
                              std::span<const int> subset, int k);

/// l-infinity bound on |SV(continuous Eq 26) - SV(discretized)| for this
/// query: 2 max over feasible top-K sets T of |nu(T) - nu-hat(T)| (the SV
/// is an average of marginals, each moved by at most twice the utility
/// perturbation). Enumerates all binom(N, <=K) candidate sets — a test and
/// diagnostic helper for oracle-sized fixtures, not a serving path.
double WknnDiscretizationBound(const WknnQueryContext& context, int k);

/// Validates that the (A, B) count tables for an (n, k, weight_bits) game
/// fit the per-query memory budget — their footprint grows as K^3 4^b, so
/// a large K at wide discretization is a refusable request, not a
/// provisionable one. OK, or invalid_argument naming 'k'. The engine runs
/// this as the weighted-fast schema precondition, so no serve/CLI request
/// can reach the recursion's fatal internal check.
Status WknnTableBudget(int n, int k, int weight_bits);

/// Exact (or approx_error-truncated) SVs of the discretized weighted game
/// for one test point in O(N^2 K 4^b) time. `shared` (optional) is a
/// precomputed WknnCoalitionWeights for (train.Size(), k).
std::vector<double> WknnShapleySingle(const Dataset& train,
                                      std::span<const float> query, int test_label,
                                      const WknnShapleyOptions& options,
                                      const CorpusNorms* norms = nullptr,
                                      const WknnCoalitionWeights* shared = nullptr);

/// The counting recursion evaluated on a prebuilt query context — the
/// post-ranking body of WknnShapleySingle, bit for bit (including the
/// kRecursion span and per-rank cancellation polls). Entry point for the
/// shard router, which assembles the context from merged per-shard
/// candidates via MakeWknnQueryContextFromRanking.
std::vector<double> WknnShapleyFromContext(const WknnQueryContext& context,
                                           const WknnShapleyOptions& options,
                                           const WknnCoalitionWeights* shared = nullptr);

/// SVs averaged over a test set (additivity, Eq 8).
std::vector<double> WknnShapley(const Dataset& train, const Dataset& test,
                                const WknnShapleyOptions& options,
                                bool parallel = true);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_WKNN_SHAPLEY_H_
