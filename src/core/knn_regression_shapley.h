// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Exact Shapley values for unweighted KNN *regression* (Theorem 6 /
// Appendix E.1), utility nu(S) = -((1/K) sum_{k<=min(K,|S|)} y_{alpha_k(S)}
// - y_test)^2 (Eq 25). Like the classification case the SV difference of
// two adjacent-in-distance points has a closed form; with prefix/suffix
// sums over the A_i^{(l)} coefficients of Eq (64) the whole recursion runs
// in O(N) after the O(N log N) sort.

#ifndef KNNSHAP_CORE_KNN_REGRESSION_SHAPLEY_H_
#define KNNSHAP_CORE_KNN_REGRESSION_SHAPLEY_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"

namespace knnshap {

/// Theorem 6 recursion on an externally sorted target sequence:
/// `sorted_targets[i]` is the target of the (i+1)-th nearest training
/// point. Returns SVs in rank order. Requires N >= K+1 (the paper's
/// derivation assumes the training set is larger than the neighborhood).
std::vector<double> KnnRegressionShapleyRecursion(
    const std::vector<double>& sorted_targets, double test_target, int k);

/// Exact SVs of all training rows for one test point. O(N (d + log N)).
/// `norms` (optional) are precomputed row norms of train.features.
std::vector<double> ExactKnnRegressionShapleySingle(const Dataset& train,
                                                    std::span<const float> query,
                                                    double test_target, int k,
                                                    Metric metric = Metric::kL2,
                                                    const CorpusNorms* norms = nullptr);

/// Exact SVs averaged over a test set with targets (additivity over test
/// points, as in Eq 8).
std::vector<double> ExactKnnRegressionShapley(const Dataset& train, const Dataset& test,
                                              int k, bool parallel = true,
                                              Metric metric = Metric::kL2);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_KNN_REGRESSION_SHAPLEY_H_
