// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// The paper's headline result (Theorem 1 / Algorithm 1): the exact Shapley
// value of every training point under the unweighted KNN classification
// utility (Eq 5) in O(N log N) per test point — an exponential improvement
// over the 2^N-evaluation definition.
//
// For a single test point, with training points sorted ascending by
// distance (alpha_i = index of the i-th nearest):
//   s_{alpha_N} = 1[y_{alpha_N} = y_test] * min(K, N) / (N K)
//   s_{alpha_i} = s_{alpha_{i+1}}
//               + (1[y_{alpha_i}=y_test] - 1[y_{alpha_{i+1}}=y_test]) / K
//                 * min(K, i) / i
// Multi-test values are the average of per-test values (additivity, Eq 8).

#ifndef KNNSHAP_CORE_EXACT_KNN_SHAPLEY_H_
#define KNNSHAP_CORE_EXACT_KNN_SHAPLEY_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"

namespace knnshap {

/// Exact SVs of all training rows for one test point (Theorem 1).
/// Returns a vector indexed by training row. O(N (d + log N)). `norms`
/// (optional) are precomputed row norms of train.features, letting
/// repeat-query callers amortize the per-row norm work.
std::vector<double> ExactKnnShapleySingle(const Dataset& train,
                                          std::span<const float> query, int test_label,
                                          int k, Metric metric = Metric::kL2,
                                          const CorpusNorms* norms = nullptr);

/// Recursion evaluated on an externally supplied distance ordering:
/// `sorted_labels[i]` is the label of the (i+1)-th nearest training point.
/// Returns SVs in *rank* order (index i = i-th nearest). This is the pure
/// O(N) core of Theorem 1, exposed for reuse by the LSH/truncated variants
/// and for property tests.
std::vector<double> KnnShapleyRecursion(const std::vector<int>& sorted_labels,
                                        int test_label, int k);

/// Non-recursive closed form (Eq 44-46), in rank order. Must agree with
/// KnnShapleyRecursion to floating-point accuracy; exposed for tests and
/// for the error analysis of Theorem 2.
std::vector<double> KnnShapleyClosedForm(const std::vector<int>& sorted_labels,
                                         int test_label, int k);

/// Truncated Theorem-1 SVs for one test point — the `approx_error` path.
/// Only the first r ranks are retrieved (streaming top-R selection, no
/// full argsort): they receive Eq (45)/(46) values with the suffix sum
/// truncated at rank r, and every tail point receives 0. Since the suffix
/// tail is at most 1/r - 1/N and |s_i| <= 1/(r+1) past rank r, the
/// sup-norm error is bounded by TruncatedExactKnnShapleyBound(r, N).
/// r is raised to min(k, N) internally; r >= N delegates to the exact
/// path (bound 0). O(N d + N + r log r) per test point.
std::vector<double> TruncatedExactKnnShapleySingle(
    const Dataset& train, std::span<const float> query, int test_label, int k,
    size_t r, Metric metric = Metric::kL2, const CorpusNorms* norms = nullptr);

/// Sup-norm truncation error of the above: max(1/r - 1/N, 1/(r+1)),
/// exactly 0 when r >= N. Returned to clients as `approx_bound`.
double TruncatedExactKnnShapleyBound(size_t r, size_t n);

/// Theorem-1 SVs evaluated on an externally supplied full distance
/// ordering — `order` must be all of train's rows ascending by (distance,
/// index), e.g. a per-shard candidate merge. `labels` is indexed by row.
/// Returns dense row-indexed SVs, bit-identical to ExactKnnShapleySingle
/// on the ordering it would compute itself (this *is* its post-ranking
/// body, including the kRecursion span).
std::vector<double> ExactKnnShapleyFromOrder(std::span<const int> order,
                                             std::span<const int> labels,
                                             int test_label, int k);

/// Truncated Theorem-1 SVs from an externally supplied top-r order prefix
/// (ascending (distance, index)) of an n-row corpus. The prefix length
/// must be TruncatedExactEffectiveRank(r, n, k) and < n — at r >= n use
/// ExactKnnShapleyFromOrder, exactly as the Single delegates.
std::vector<double> TruncatedExactKnnShapleyFromOrder(
    std::span<const int> order_prefix, std::span<const int> labels,
    int test_label, int k, size_t n);

/// The prefix length the truncated path actually retrieves for a nominal
/// r: max(r, min(k, n)) — the i < K branch of Eq (46) reads the suffix at
/// rank min(K, N). Shared with the shard router so a fanned-out retrieval
/// requests the identical prefix.
size_t TruncatedExactEffectiveRank(size_t r, size_t n, int k);

/// Exact SVs averaged over a test set (Algorithm 1). Parallelizes over
/// test points when `parallel` is true. O(N_test * N (d + log N)).
std::vector<double> ExactKnnShapley(const Dataset& train, const Dataset& test, int k,
                                    bool parallel = true, Metric metric = Metric::kL2);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_EXACT_KNN_SHAPLEY_H_
