// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Corrected exact KNN-Shapley (Wang & Jia, arXiv:2304.04258). The source
// paper's Theorem 1 derivation evaluates the KNN utility of a coalition S
// with |S| < K as (1/K) * sum of the matches among *all* of S — i.e. it
// keeps dividing by K even when fewer than K neighbors exist. The note
// points out that the natural soft-label KNN classifier normalizes by the
// number of neighbors actually voting, and derives the exact Shapley value
// under the corrected utility
//
//   nu(S) = (1 / min(K, |S|)) * sum_{j=1}^{min(K,|S|)} 1[y_{alpha_j(S)} = y],
//   nu(emptyset) = 0,
//
// still in O(N log N) per test point. Our recursion (verified against
// brute-force subset enumeration in tests/corrected_shapley_test.cpp)
// splits the Shapley sum at coalition size K:
//
//   * |S| < K — every member votes, so the marginal gain of i depends only
//     on |S| and the match count of S; averaging the hypergeometric match
//     count gives a rank-independent term g(a_i), affine in the match
//     indicator a_i = 1[y_i = y].
//   * |S| >= K — adding i evicts the K-th neighbor of S, and pairing
//     coalitions of adjacent-rank points telescopes into
//       phi_{alpha_r} - phi_{alpha_{r+1}} =
//           (a_r - a_{r+1}) * (g(1) - g(0) + W_r / (N K)),
//     where W_r = sum over coalition sizes of the probability that fewer
//     than K members outrank alpha_r. The expected position of the K-th of
//     r-1 marked items in a random arrangement of N-1 items collapses W_r
//     to the closed form  W_r = N - K for r <= K,  K (N - r) / r otherwise.
//
// Ties in distance are broken by training-row index, matching
// ArgsortByDistance everywhere else in the library.

#ifndef KNNSHAP_CORE_CORRECTED_KNN_SHAPLEY_H_
#define KNNSHAP_CORE_CORRECTED_KNN_SHAPLEY_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"

namespace knnshap {

/// Corrected-utility Shapley values in *rank* order: `sorted_labels[i]` is
/// the label of the (i+1)-th nearest training point and the returned value
/// at index i belongs to that point. O(N + K) after sorting.
std::vector<double> CorrectedKnnShapleyRecursion(const std::vector<int>& sorted_labels,
                                                 int test_label, int k);

/// Corrected-utility Shapley values of all training rows for one test
/// point, indexed by training row. O(N (d + log N)). `norms` (optional)
/// are precomputed row norms of train.features.
std::vector<double> CorrectedKnnShapleySingle(const Dataset& train,
                                              std::span<const float> query,
                                              int test_label, int k,
                                              Metric metric = Metric::kL2,
                                              const CorpusNorms* norms = nullptr);

/// Truncated corrected SVs for one test point — the `approx_error` path.
/// Telescoping the recursion from the farthest rank and using that g(a) is
/// affine gives the closed form
///   phi_{alpha_r} = g(a_r) + sum_{i=r}^{N-1} (a_i - a_{i+1}) c_i,
///   c_i = W_i / (N K) = 1/max(i, K) - 1/N   (0 when N-1 < K),
/// whose rank-dependent sum telescopes with |partial sums| <= 1 and c_i
/// decreasing, so dropping ranks past r changes any value by at most
/// c_r = 1/r - 1/N. Only the first r ranks are retrieved; every tail point
/// receives its rank-independent g(a) term, which needs just the point's
/// own label and the global match count. r is raised to min(k, N)
/// internally; r >= N (and the N-1 < K regime, where every c_i vanishes
/// and the result is exact) delegates accordingly.
std::vector<double> TruncatedCorrectedKnnShapleySingle(
    const Dataset& train, std::span<const float> query, int test_label, int k,
    size_t r, Metric metric = Metric::kL2, const CorpusNorms* norms = nullptr);

/// Sup-norm truncation error of the above: 1/r - 1/N, exactly 0 when
/// r >= N or N-1 < k (no coalition of size >= k exists — the
/// rank-dependent term vanishes and truncation is exact).
double TruncatedCorrectedKnnShapleyBound(size_t r, size_t n, int k);

/// Corrected SVs evaluated on an externally supplied full distance
/// ordering (ascending (distance, index); `labels` indexed by row) —
/// the post-ranking body of CorrectedKnnShapleySingle, bit for bit.
std::vector<double> CorrectedKnnShapleyFromOrder(std::span<const int> order,
                                                 std::span<const int> labels,
                                                 int test_label, int k);

/// Truncated corrected SVs from an externally supplied top-r order prefix.
/// In the N-1 < K regime the result is labels-only and `order_prefix` is
/// ignored (pass empty); otherwise the prefix length must be
/// TruncatedCorrectedEffectiveRank(r, n, k) and < n — at r >= n use
/// CorrectedKnnShapleyFromOrder, exactly as the Single delegates.
std::vector<double> TruncatedCorrectedKnnShapleyFromOrder(
    std::span<const int> order_prefix, std::span<const int> labels,
    int test_label, int k);

/// The prefix length the truncated corrected path retrieves for a nominal
/// r: max(r, k). Shared with the shard router so a fanned-out retrieval
/// requests the identical prefix.
size_t TruncatedCorrectedEffectiveRank(size_t r, size_t n, int k);

}  // namespace knnshap

#endif  // KNNSHAP_CORE_CORRECTED_KNN_SHAPLEY_H_
