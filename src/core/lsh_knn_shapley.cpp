// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/lsh_knn_shapley.h"

#include <algorithm>
#include <cmath>

#include "core/exact_knn_shapley.h"
#include "dataset/contrast.h"
#include "obs/trace.h"
#include "lsh/tuning.h"
#include "util/common.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace knnshap {

LshCorpusPrep PrepareCorpusForRetrieval(Dataset* corpus, int k, double epsilon,
                                        uint64_t seed, size_t contrast_sample) {
  KNNSHAP_CHECK(corpus != nullptr && corpus->Size() >= 2, "corpus too small");
  LshCorpusPrep prep;
  prep.k_star = KStar(k, epsilon);
  Rng rng(seed);
  size_t sample = std::min(contrast_sample, corpus->Size());
  ContrastEstimate est = EstimateRelativeContrast(
      *corpus, *corpus,
      std::min<int>(prep.k_star + 1, static_cast<int>(corpus->Size()) - 1), sample,
      4 * sample, &rng);
  prep.contrast = est.c_k;
  if (est.d_mean > 0.0) {
    prep.scale = 1.0 / est.d_mean;
    corpus->features.Scale(prep.scale);
  }
  return prep;
}

LshConfig TuneForPreparedCorpus(size_t corpus_size, const LshCorpusPrep& prep,
                                double delta, uint64_t seed) {
  return TuneForContrast(corpus_size, std::max(prep.contrast, 1.01), prep.k_star,
                         delta, /*alpha=*/1.0, seed);
}

int KStar(int k, double epsilon) {
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  KNNSHAP_CHECK(epsilon > 0.0, "epsilon must be positive");
  double inv = std::ceil(1.0 / epsilon);
  return std::max(k, static_cast<int>(inv));
}

std::vector<double> TruncatedShapleyFromNeighbors(const Dataset& train,
                                                  std::span<const Neighbor> neighbors,
                                                  int test_label, int k, int k_star) {
  KNNSHAP_CHECK(k >= 1 && k_star >= k, "require k_star >= k >= 1");
  ScopedPhase span(Phase::kRecursion);
  const int r = static_cast<int>(neighbors.size());
  std::vector<double> sv(static_cast<size_t>(r), 0.0);
  if (r == 0) return sv;
  const double kd = static_cast<double>(k);
  auto match = [&](int rank) {  // 1-based rank into `neighbors`
    int row = neighbors[static_cast<size_t>(rank - 1)].index;
    return train.labels[static_cast<size_t>(row)] == test_label ? 1.0 : 0.0;
  };

  if (r >= static_cast<int>(train.Size())) {
    // Degenerate truncation (K* >= N): fall back to the exact recursion.
    std::vector<int> sorted_labels(static_cast<size_t>(r));
    for (int i = 0; i < r; ++i) {
      sorted_labels[static_cast<size_t>(i)] =
          train.labels[static_cast<size_t>(neighbors[static_cast<size_t>(i)].index)];
    }
    return KnnShapleyRecursion(sorted_labels, test_label, k);
  }

  // Anchor: ranks >= K* (and the deepest retrieved rank) get 0 (Eq 18).
  int anchor = std::min(r, k_star);
  // Backward recursion of Eq (19) from the anchor.
  for (int i = anchor - 1; i >= 1; --i) {
    sv[static_cast<size_t>(i - 1)] =
        sv[static_cast<size_t>(i)] +
        (match(i) - match(i + 1)) / kd * static_cast<double>(std::min(k, i)) /
            static_cast<double>(i);
  }
  return sv;
}

namespace {

// Shared implementation: retrieval_fn(j, k_star) returns the (approximate)
// top-K* neighbors of test row j, ascending.
template <typename RetrievalFn>
std::vector<double> TruncatedShapleyOverTests(const Dataset& train, const Dataset& test,
                                              int k, double epsilon, bool parallel,
                                              RetrievalFn retrieval_fn) {
  KNNSHAP_CHECK(train.HasLabels() && test.HasLabels(), "labels required");
  KNNSHAP_CHECK(test.Size() > 0, "empty test set");
  const int k_star = KStar(k, epsilon);
  const size_t n = train.Size();
  std::vector<std::vector<std::pair<int, double>>> sparse(test.Size());
  auto run_one = [&](size_t j) {
    std::vector<Neighbor> neighbors = retrieval_fn(j, k_star);
    std::vector<double> by_rank = TruncatedShapleyFromNeighbors(
        train, neighbors, test.labels[j], k, k_star);
    auto& out = sparse[j];
    out.reserve(neighbors.size());
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (by_rank[i] != 0.0) out.emplace_back(neighbors[i].index, by_rank[i]);
    }
  };
  if (parallel && test.Size() > 1) {
    ThreadPool::Shared().ParallelFor(test.Size(), run_one);
  } else {
    for (size_t j = 0; j < test.Size(); ++j) run_one(j);
  }
  std::vector<double> sv(n, 0.0);
  for (const auto& contributions : sparse) {
    for (const auto& [row, value] : contributions) {
      sv[static_cast<size_t>(row)] += value;
    }
  }
  for (auto& s : sv) s /= static_cast<double>(test.Size());
  return sv;
}

}  // namespace

std::vector<double> TruncatedKnnShapley(const Dataset& train, const Dataset& test,
                                        int k, double epsilon, bool parallel) {
  const CorpusNorms norms(train.features);
  return TruncatedShapleyOverTests(
      train, test, k, epsilon, parallel, [&](size_t j, int k_star) {
        return TopKNeighbors(train.features, test.features.Row(j),
                             static_cast<size_t>(k_star), Metric::kL2, &norms);
      });
}

LshConfig TuneLshEmpirically(const Dataset& train, const Dataset& validation, int k,
                             double epsilon, double contrast, size_t max_tables,
                             double* achieved_error) {
  KNNSHAP_CHECK(validation.Size() > 0, "empty validation set");
  LshConfig config;
  config.width = SelectWidth(std::max(contrast, 1.01));
  config.num_projections = NumProjections(train.Size(), config.width);
  // Reference: exact values restricted to the validation queries. The
  // acceptance threshold keeps a 20% safety margin under epsilon so that
  // a borderline pass on the validation draw still generalizes to unseen
  // queries.
  std::vector<double> exact = ExactKnnShapley(train, validation, k);
  double error = 0.0;
  for (size_t tables = 2; tables <= max_tables; tables *= 2) {
    config.num_tables = tables;
    LshIndex index(&train.features, config);
    auto approx = LshKnnShapley(train, validation, k, epsilon, index);
    error = MaxAbsDifference(exact, approx);
    if (error <= 0.8 * epsilon) break;
  }
  if (achieved_error != nullptr) *achieved_error = error;
  return config;
}

std::vector<double> LshKnnShapley(const Dataset& train, const Dataset& test, int k,
                                  double epsilon, const LshIndex& index,
                                  LshShapleyStats* stats, bool parallel) {
  std::vector<LshQueryStats> query_stats(test.Size());
  auto sv = TruncatedShapleyOverTests(
      train, test, k, epsilon, parallel, [&](size_t j, int k_star) {
        return index.Query(test.features.Row(j), static_cast<size_t>(k_star),
                           &query_stats[j]);
      });
  if (stats != nullptr) {
    stats->queries = test.Size();
    double cand = 0.0, ret = 0.0;
    for (const auto& qs : query_stats) {
      cand += static_cast<double>(qs.candidates);
      ret += static_cast<double>(qs.returned);
    }
    stats->mean_candidates = cand / static_cast<double>(test.Size());
    stats->mean_returned = ret / static_cast<double>(test.Size());
  }
  return sv;
}

}  // namespace knnshap
