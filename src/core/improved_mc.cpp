// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "core/improved_mc.h"

#include <algorithm>
#include <cmath>

#include "core/bennett.h"
#include "knn/neighbors.h"
#include "util/cancel.h"
#include "util/common.h"
#include "util/random.h"

namespace knnshap {

IncrementalKnnUtility::IncrementalKnnUtility(const Dataset* train, const Dataset* test,
                                             int k, KnnTask task, WeightConfig weights,
                                             const OwnerAssignment* owners,
                                             Metric metric)
    : train_(train),
      test_(test),
      k_(k),
      task_(task),
      weights_(weights),
      owners_(owners),
      metric_(metric) {
  KNNSHAP_CHECK(train != nullptr && test != nullptr, "null dataset");
  KNNSHAP_CHECK(k >= 1, "k must be >= 1");
  KNNSHAP_CHECK(test->Size() > 0, "empty test set");
  if (owners != nullptr) {
    KNNSHAP_CHECK(owners->NumRows() == train->Size(), "ownership size mismatch");
  }
  heaps_.reserve(test->Size());
  for (size_t j = 0; j < test->Size(); ++j) {
    heaps_.emplace_back(static_cast<size_t>(k));
  }
  test_utilities_.assign(test->Size(), 0.0);
  // Cache the full test x train distance matrix when it fits comfortably
  // (it removes the O(d) factor from every insertion). Doubles, not
  // floats: the weighted utilities are sensitive to distance rounding and
  // must agree bit-for-bit with the batch evaluation. That agreement pins
  // this fill to the scalar *reference* distance (the same per-pair loop
  // behind Distance(), which TopKAmongRows and the uncached RowDistance
  // fallback use) rather than the batched fast kernels: one distance
  // definition everywhere keeps MC results independent of whether the
  // corpus crosses the cache threshold, at the cost of the kernel speedup
  // on this one-time fill. Only the per-pair dimension check is hoisted.
  const size_t cells = train->Size() * test->Size();
  cache_distances_ = cells <= (32u << 20);  // <= 256 MB of doubles
  if (cache_distances_) {
    KNNSHAP_CHECK(train->Size() == 0 ||
                      test->features.Cols() == train->features.Cols(),
                  "test dimension mismatch");
    distance_cache_.resize(cells);
    const size_t d = train->features.Cols();
    for (size_t j = 0; j < test->Size(); ++j) {
      const float* query = test->features.Row(j).data();
      for (size_t i = 0; i < train->Size(); ++i) {
        distance_cache_[j * train->Size() + i] = internal::DistanceUnchecked(
            train->features.Row(i).data(), query, d, metric_);
      }
    }
  }
  Reset();
}

int IncrementalKnnUtility::NumPlayers() const {
  return owners_ != nullptr ? owners_->NumSellers()
                            : static_cast<int>(train_->Size());
}

double IncrementalKnnUtility::EmptyValue() const {
  switch (task_) {
    case KnnTask::kClassification:
    case KnnTask::kWeightedClassification:
      return 0.0;
    case KnnTask::kRegression:
    case KnnTask::kWeightedRegression: {
      // Eq (25) on the empty set: -(0 - y_test)^2, averaged over tests.
      double total = 0.0;
      for (size_t j = 0; j < test_->Size(); ++j) {
        total -= test_->targets[j] * test_->targets[j];
      }
      return total / static_cast<double>(test_->Size());
    }
  }
  KNNSHAP_CHECK(false, "unknown task");
}

void IncrementalKnnUtility::Reset() {
  for (auto& heap : heaps_) heap.Clear();
  double empty_per_test;
  switch (task_) {
    case KnnTask::kClassification:
    case KnnTask::kWeightedClassification:
      empty_per_test = 0.0;
      break;
    default:
      empty_per_test = 0.0;  // overwritten below per test point
  }
  total_utility_ = 0.0;
  for (size_t j = 0; j < test_->Size(); ++j) {
    if (task_ == KnnTask::kRegression || task_ == KnnTask::kWeightedRegression) {
      test_utilities_[j] = -test_->targets[j] * test_->targets[j];
    } else {
      test_utilities_[j] = empty_per_test;
    }
    total_utility_ += test_utilities_[j];
  }
}

double IncrementalKnnUtility::RowDistance(int row, size_t test_idx) const {
  if (cache_distances_) {
    return distance_cache_[test_idx * train_->Size() + static_cast<size_t>(row)];
  }
  return Distance(train_->features.Row(static_cast<size_t>(row)),
                  test_->features.Row(test_idx), metric_);
}

double IncrementalKnnUtility::TestUtility(size_t test_idx) const {
  const auto& heap = heaps_[test_idx];
  if (heap.Empty()) {
    if (task_ == KnnTask::kRegression || task_ == KnnTask::kWeightedRegression) {
      return -test_->targets[test_idx] * test_->targets[test_idx];
    }
    return 0.0;
  }
  switch (task_) {
    case KnnTask::kClassification: {
      double correct = 0.0;
      for (const auto& e : heap.Entries()) {
        if (train_->labels[static_cast<size_t>(e.payload)] ==
            test_->labels[test_idx]) {
          correct += 1.0;
        }
      }
      return correct / static_cast<double>(k_);
    }
    case KnnTask::kRegression: {
      double sum = 0.0;
      for (const auto& e : heap.Entries()) {
        sum += train_->targets[static_cast<size_t>(e.payload)];
      }
      double err = sum / static_cast<double>(k_) - test_->targets[test_idx];
      return -err * err;
    }
    case KnnTask::kWeightedClassification:
    case KnnTask::kWeightedRegression: {
      auto sorted = heap.SortedEntries();
      std::vector<double> dists;
      dists.reserve(sorted.size());
      for (const auto& e : sorted) dists.push_back(e.key);
      auto w = ComputeWeights(dists, weights_);
      if (task_ == KnnTask::kWeightedClassification) {
        double utility = 0.0;
        for (size_t i = 0; i < sorted.size(); ++i) {
          if (train_->labels[static_cast<size_t>(sorted[i].payload)] ==
              test_->labels[test_idx]) {
            utility += w[i];
          }
        }
        return utility;
      }
      double estimate = 0.0;
      for (size_t i = 0; i < sorted.size(); ++i) {
        estimate += w[i] * train_->targets[static_cast<size_t>(sorted[i].payload)];
      }
      double err = estimate - test_->targets[test_idx];
      return -err * err;
    }
  }
  KNNSHAP_CHECK(false, "unknown task");
}

void IncrementalKnnUtility::AddRow(int row) {
  for (size_t j = 0; j < heaps_.size(); ++j) {
    // Algorithm 2 line 16: only re-evaluate when the K-NN heap changed.
    if (heaps_[j].Push(RowDistance(row, j), row)) {
      double updated = TestUtility(j);
      total_utility_ += updated - test_utilities_[j];
      test_utilities_[j] = updated;
    }
  }
}

double IncrementalKnnUtility::AddPlayer(int player) {
  if (owners_ != nullptr) {
    for (int row : owners_->RowsOf(player)) AddRow(row);
  } else {
    AddRow(player);
  }
  return total_utility_ / static_cast<double>(test_->Size());
}

CompositeIncrementalUtility::CompositeIncrementalUtility(IncrementalUtility* base)
    : base_(base) {
  KNNSHAP_CHECK(base != nullptr, "null base utility");
}

int CompositeIncrementalUtility::NumPlayers() const {
  return base_->NumPlayers() + 1;
}

double CompositeIncrementalUtility::EmptyValue() const { return 0.0; }

void CompositeIncrementalUtility::Reset() {
  base_->Reset();
  analyst_in_ = false;
  sellers_in_ = 0;
  base_value_ = base_->EmptyValue();
}

double CompositeIncrementalUtility::AddPlayer(int player) {
  if (player == AnalystId()) {
    analyst_in_ = true;
  } else {
    base_value_ = base_->AddPlayer(player);
    ++sellers_in_;
  }
  // Eq (28): value is zero without both computation and data.
  if (!analyst_in_ || sellers_in_ == 0) return 0.0;
  return base_value_;
}

int64_t StoppingRulePermutations(const ImprovedMcOptions& options, int64_t n) {
  switch (options.stopping) {
    case McStoppingRule::kHoeffding:
      return HoeffdingPermutations(n, options.epsilon, options.delta,
                                   options.utility_range);
    case McStoppingRule::kBennett:
      return BennettPermutations(n, options.k, options.epsilon, options.delta,
                                 options.utility_range);
    case McStoppingRule::kApproxBennett:
      return ApproxBennettPermutations(options.k, options.epsilon, options.delta,
                                       options.utility_range);
    case McStoppingRule::kHeuristic:
      // The heuristic has no a-priori bound; fall back to Bennett as a cap.
      return BennettPermutations(n, options.k, options.epsilon, options.delta,
                                 options.utility_range);
  }
  KNNSHAP_CHECK(false, "unknown stopping rule");
}

McEstimate ImprovedMcShapley(IncrementalUtility* utility,
                             const ImprovedMcOptions& options) {
  KNNSHAP_CHECK(utility != nullptr, "null utility");
  const int n = utility->NumPlayers();
  KNNSHAP_CHECK(n >= 1, "no players");

  int64_t budget = StoppingRulePermutations(options, n);
  if (options.max_permutations >= 0) {
    budget = std::min(budget, options.max_permutations);
  }
  const bool heuristic = options.stopping == McStoppingRule::kHeuristic;
  const double threshold = options.epsilon / options.heuristic_divisor;

  // TMC truncation needs the grand-coalition utility as its reference.
  double grand_value = 0.0;
  if (options.tmc_tolerance > 0.0) {
    utility->Reset();
    grand_value = utility->EmptyValue();
    for (int i = 0; i < n; ++i) grand_value = utility->AddPlayer(i);
  }

  Rng rng(options.seed);
  McEstimate result;
  std::vector<double> sums(static_cast<size_t>(n), 0.0);
  std::vector<double> previous_estimate(static_cast<size_t>(n), 0.0);

  int64_t t = 0;
  while (t < budget) {
    // Per-permutation cancellation poll (block granularity for TMC too:
    // one permutation is one pass over the players).
    if (CancelRequested()) break;
    ++t;
    std::vector<int> perm = rng.Permutation(n);
    utility->Reset();
    double prev = utility->EmptyValue();
    int evaluated = 0;
    for (int i = 0; i < n; ++i) {
      int player = perm[static_cast<size_t>(i)];
      double cur = utility->AddPlayer(player);
      sums[static_cast<size_t>(player)] += cur - prev;
      prev = cur;
      ++evaluated;
      // TMC: the utility has effectively converged to nu(I); remaining
      // marginals are ~0, so end the pass (their sums are left untouched).
      if (options.tmc_tolerance > 0.0 &&
          std::fabs(cur - grand_value) < options.tmc_tolerance) {
        result.truncated_insertions += n - evaluated;
        break;
      }
    }
    result.utility_evaluations += evaluated;
    if (heuristic && t >= options.min_permutations) {
      // Max change of the running estimate vs the previous iteration.
      double worst = 0.0;
      for (int i = 0; i < n; ++i) {
        double estimate = sums[static_cast<size_t>(i)] / static_cast<double>(t);
        worst = std::max(worst,
                         std::fabs(estimate - previous_estimate[static_cast<size_t>(i)]));
        previous_estimate[static_cast<size_t>(i)] = estimate;
      }
      if (worst < threshold) break;
    } else if (heuristic) {
      for (int i = 0; i < n; ++i) {
        previous_estimate[static_cast<size_t>(i)] =
            sums[static_cast<size_t>(i)] / static_cast<double>(t);
      }
    }
  }
  result.permutations = t;
  result.shapley.assign(static_cast<size_t>(n), 0.0);
  if (t == 0) return result;  // cancelled before the first permutation
  for (int i = 0; i < n; ++i) {
    result.shapley[static_cast<size_t>(i)] =
        sums[static_cast<size_t>(i)] / static_cast<double>(t);
  }
  return result;
}

}  // namespace knnshap
