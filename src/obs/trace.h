// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// RequestTrace — per-request phase spans for the valuation engine.
//
// A trace is a fixed array of (nanos, count) pairs, one slot per Phase.
// Spans are recorded with ScopedPhase (RAII around a steady_clock pair)
// either against an explicit trace pointer (engine-level phases) or
// against the thread-local *active* trace (deep phases recorded from
// inside shared kernels — distance, sort, recursion — which know nothing
// about requests). The engine activates the trace on each worker thread
// for the duration of a query batch via TraceActivation; slots are
// atomics so workers on different threads can add to the same trace
// concurrently.
//
// Cost model:
//  * trace pointer null → ScopedPhase is two branch-only constructions;
//    no clock is read. This is the disabled-by-default path (<1% on the
//    warm-replay bench, gated in bench_serve).
//  * metrics-only requests (registry wired, no "trace":true) record the
//    engine-level phases — a dozen clock pairs per request — but skip the
//    deep per-query phases (`deep` stays false, the thread-local active
//    trace is never set).
//  * traced requests ("trace":true, --trace-all, or a slow-log threshold)
//    record everything, including per-query distance/sort/recursion spans.
//
// Phase names are a STABLE CONTRACT (serve trace output, slow log, and
// the knnshap_phase_nanos_total metric label all use them); see
// src/serve/README.md before renaming anything.

#ifndef KNNSHAP_OBS_TRACE_H_
#define KNNSHAP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace knnshap {

/// Request phases, in rough execution order. Deep phases (kDistance …
/// kRecursion) nest inside kValue; kQueueWait and kParse/kSerialize are
/// recorded by the serve layer, the rest by the engine.
enum class Phase : int {
  kParse = 0,    ///< JSONL parse + request decoding (serve layer).
  kValidate,     ///< Schema lookup, param canonicalization, preconditions.
  kFingerprint,  ///< Corpus fingerprint computation (0 reuses when cached).
  kCacheProbe,   ///< Result-cache lookup.
  kFit,          ///< Valuator build (kd-tree/LSH/norms) or fit-slot wait.
  kValue,        ///< The per-query valuation loop (parent of deep phases).
  kDistance,     ///< Deep: distance kernel passes.
  kSort,         ///< Deep: full neighbor argsort (complete rank order).
  kSelect,       ///< Deep: streaming top-R selection / shard merge.
  kRetrieve,     ///< Deep: kd-tree / LSH index queries.
  kRecursion,    ///< Deep: Shapley recursion / DP over the ranking.
  kMerge,        ///< In-order merge of per-query shards.
  kFinalize,     ///< Valuator finalize + summary statistics.
  kCacheStore,   ///< Result-cache insert.
  kSerialize,    ///< Response JSON build (serve layer).
  kQueueWait,    ///< Dispatch-to-run wait in the pipelined loop.
  kShardFanout,  ///< Per-query fan-out to shard workers (shard router).
  kShardMerge,   ///< K-way merge of per-shard candidate runs.
  kShardConnect,   ///< Remote-shard dial + corpus sync (socket transport).
  kShardFailover,  ///< Replica failover: reconnect + retry on a sibling.
  kNumPhases,
};

inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kNumPhases);

/// Stable lowercase span name ("distance", "cache_probe", ...).
const char* PhaseName(Phase phase);

/// Per-phase accumulated wall time and span count for one request.
class RequestTrace {
 public:
  RequestTrace() = default;
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  void Add(Phase phase, uint64_t nanos) {
    Slot& slot = slots_[static_cast<size_t>(phase)];
    slot.nanos.fetch_add(nanos, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Nanos(Phase phase) const {
    return slots_[static_cast<size_t>(phase)].nanos.load(
        std::memory_order_relaxed);
  }
  uint64_t SpanCount(Phase phase) const {
    return slots_[static_cast<size_t>(phase)].count.load(
        std::memory_order_relaxed);
  }
  double Seconds(Phase phase) const {
    return static_cast<double>(Nanos(phase)) * 1e-9;
  }

  /// When false (metrics-only mode) the engine never activates the trace
  /// on worker threads, so deep per-query phases stay empty and their
  /// clock cost is never paid.
  bool deep = false;

  // Request labels, filled by the engine after the run (single-threaded
  // at that point; plain fields are fine).
  std::string kernel;      ///< Active distance-kernel variant name.
  bool fit_reused = false;
  bool cache_hit = false;

 private:
  struct Slot {
    std::atomic<uint64_t> nanos{0};
    std::atomic<uint64_t> count{0};
  };
  Slot slots_[kNumPhases];
};

/// The calling thread's active trace (deep-phase target), or nullptr.
RequestTrace* ActiveTrace();

/// RAII: makes `trace` the calling thread's active trace, restoring the
/// previous one on destruction. Passing nullptr deactivates tracing for
/// the scope (used to shield untraced work).
class TraceActivation {
 public:
  explicit TraceActivation(RequestTrace* trace);
  ~TraceActivation();
  TraceActivation(const TraceActivation&) = delete;
  TraceActivation& operator=(const TraceActivation&) = delete;

 private:
  RequestTrace* previous_;
};

/// RAII span: records elapsed steady-clock nanos into one phase slot.
/// With a null trace neither constructor nor destructor reads the clock.
class ScopedPhase {
 public:
  /// Records into the thread-local active trace (deep phases).
  explicit ScopedPhase(Phase phase) : ScopedPhase(ActiveTrace(), phase) {}

  /// Records into an explicit trace (engine/serve-level phases).
  ScopedPhase(RequestTrace* trace, Phase phase) : trace_(trace), phase_(phase) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedPhase() {
    if (trace_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    trace_->Add(phase_, static_cast<uint64_t>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                elapsed)
                                .count()));
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  RequestTrace* trace_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace knnshap

#endif  // KNNSHAP_OBS_TRACE_H_
