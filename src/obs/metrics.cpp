// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/common.h"
#include "util/json.h"

namespace knnshap {

namespace internal {

size_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  static thread_local uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation, 1-based; q=0 maps to rank 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.5));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= rank) {
      // Interpolate inside bucket i: lower bound is the previous finite
      // bound (0 below the first), upper bound is bounds[i] (or `max` for
      // the overflow bucket, whose width is otherwise unbounded).
      const double lower = (i == 0) ? 0.0 : bounds[i - 1];
      const double upper = (i < bounds.size()) ? bounds[i] : max;
      const double fraction = static_cast<double>(rank - cumulative) /
                              static_cast<double>(counts[i]);
      const double estimate = lower + (upper - lower) * fraction;
      // Clamp to the exact observed max so small-sample readouts are
      // exact: a single-sample histogram reports the sample itself.
      return std::min(estimate, max);
    }
    cumulative += counts[i];
  }
  return max;  // Unreachable when counts are consistent with `count`.
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  KNNSHAP_CHECK(!bounds_.empty(), "Histogram: need at least one bucket bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    KNNSHAP_CHECK(bounds_[i - 1] < bounds_[i],
                  "Histogram: bounds must be strictly ascending");
  }
  shards_ = std::vector<Shard>(kMetricShards);
  const size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<uint64_t>[]>(buckets);
    for (size_t i = 0; i < buckets; ++i) shard.buckets[i].store(0);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound satisfies value <= bound (`le`
  // semantics); past the last bound → overflow bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  Shard& shard = shards_[internal::ThisThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&shard.sum, value);
  internal::AtomicMaxDouble(&shard.max, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      snap.counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
  }
  return snap;
}

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double> kBuckets = [] {
    std::vector<double> bounds;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
      bounds.push_back(decade);
      bounds.push_back(decade * 2.5);
      bounds.push_back(decade * 5.0);
    }
    return bounds;  // 1µs, 2.5µs, 5µs, ... 10s, 25s, 50s.
  }();
  return kBuckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(
                                bounds ? *bounds : LatencyBucketsSeconds()))
             .first;
  }
  return it->second.get();
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram->Snapshot()});
  }
  return snap;  // std::map iteration: already sorted by name.
}

namespace {

// Splits `knnshap_foo_total{method="exact"}` into base name and the inner
// label list (`method="exact"`, no braces); labels empty when absent.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  const size_t close = name.rfind('}');
  *labels = name.substr(brace + 1, close == std::string::npos
                                       ? std::string::npos
                                       : close - brace - 1);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// `base{labels,extra}` with correct comma/brace placement.
std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  std::string joined = labels;
  if (!extra.empty()) {
    if (!joined.empty()) joined += ",";
    joined += extra;
  }
  if (joined.empty()) return base;
  return base + "{" + joined + "}";
}

void EmitTypeOnce(std::string* out, std::string* last_base,
                  const std::string& base, const char* type) {
  if (*last_base == base) return;
  *last_base = base;
  out->append("# TYPE " + base + " " + type + "\n");
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out;
  std::string base, labels, last_base;
  char line[256];

  for (const auto& entry : snap.counters) {
    SplitLabels(entry.name, &base, &labels);
    EmitTypeOnce(&out, &last_base, base, "counter");
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", entry.value);
    out += WithLabels(base, labels) + line;
  }
  last_base.clear();
  for (const auto& entry : snap.gauges) {
    SplitLabels(entry.name, &base, &labels);
    EmitTypeOnce(&out, &last_base, base, "gauge");
    std::snprintf(line, sizeof(line), " %lld\n",
                  static_cast<long long>(entry.value));
    out += WithLabels(base, labels) + line;
  }
  last_base.clear();
  for (const auto& entry : snap.histograms) {
    SplitLabels(entry.name, &base, &labels);
    EmitTypeOnce(&out, &last_base, base, "histogram");
    const HistogramSnapshot& h = entry.snapshot;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      std::snprintf(line, sizeof(line), " %" PRIu64 "\n", cumulative);
      out += WithLabels(base + "_bucket", labels,
                        "le=\"" + FormatDouble(h.bounds[i]) + "\"") +
             line;
    }
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.count);
    out += WithLabels(base + "_bucket", labels, "le=\"+Inf\"") + line;
    out += WithLabels(base + "_sum", labels) + " " + FormatDouble(h.sum) + "\n";
    std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.count);
    out += WithLabels(base + "_count", labels) + line;
  }
  return out;
}

JsonValue MetricsRegistry::ToJson() const {
  const RegistrySnapshot snap = Snapshot();
  JsonValue out = JsonValue::MakeObject();

  JsonValue counters = JsonValue::MakeObject();
  for (const auto& entry : snap.counters) {
    counters.Set(entry.name, JsonValue(static_cast<double>(entry.value)));
  }
  out.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::MakeObject();
  for (const auto& entry : snap.gauges) {
    gauges.Set(entry.name, JsonValue(static_cast<double>(entry.value)));
  }
  out.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::MakeObject();
  for (const auto& entry : snap.histograms) {
    const HistogramSnapshot& h = entry.snapshot;
    JsonValue hist = JsonValue::MakeObject();
    hist.Set("count", JsonValue(static_cast<double>(h.count)));
    hist.Set("sum", JsonValue(h.sum));
    hist.Set("max", JsonValue(h.max));
    hist.Set("p50", JsonValue(h.Quantile(0.50)));
    hist.Set("p95", JsonValue(h.Quantile(0.95)));
    hist.Set("p99", JsonValue(h.Quantile(0.99)));
    JsonValue buckets = JsonValue::MakeArray();
    for (size_t i = 0; i < h.counts.size(); ++i) {
      JsonValue bucket = JsonValue::MakeObject();
      if (i < h.bounds.size()) {
        bucket.Set("le", JsonValue(h.bounds[i]));
      } else {
        bucket.Set("le", JsonValue("+Inf"));
      }
      bucket.Set("count", JsonValue(static_cast<double>(h.counts[i])));
      buckets.Append(std::move(bucket));
    }
    hist.Set("buckets", std::move(buckets));
    histograms.Set(entry.name, std::move(hist));
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace knnshap
