// Copyright 2026 the knnshap authors. Apache-2.0 license.

#include "obs/trace.h"

namespace knnshap {

namespace {
thread_local RequestTrace* g_active_trace = nullptr;
}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kParse:
      return "parse";
    case Phase::kValidate:
      return "validate";
    case Phase::kFingerprint:
      return "fingerprint";
    case Phase::kCacheProbe:
      return "cache_probe";
    case Phase::kFit:
      return "fit";
    case Phase::kValue:
      return "value";
    case Phase::kDistance:
      return "distance";
    case Phase::kSort:
      return "sort";
    case Phase::kSelect:
      return "select";
    case Phase::kRetrieve:
      return "retrieve";
    case Phase::kRecursion:
      return "recursion";
    case Phase::kMerge:
      return "merge";
    case Phase::kFinalize:
      return "finalize";
    case Phase::kCacheStore:
      return "cache_store";
    case Phase::kSerialize:
      return "serialize";
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kShardFanout:
      return "shard_fanout";
    case Phase::kShardMerge:
      return "shard_merge";
    case Phase::kShardConnect:
      return "shard_connect";
    case Phase::kShardFailover:
      return "shard_failover";
    case Phase::kNumPhases:
      break;
  }
  return "unknown";
}

RequestTrace* ActiveTrace() { return g_active_trace; }

TraceActivation::TraceActivation(RequestTrace* trace)
    : previous_(g_active_trace) {
  g_active_trace = trace;
}

TraceActivation::~TraceActivation() { g_active_trace = previous_; }

}  // namespace knnshap
