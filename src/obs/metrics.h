// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// MetricsRegistry — lock-cheap named counters, gauges and fixed-bucket
// histograms for the serving stack. Design goals, in order:
//
//  * Hot-path writes are one relaxed atomic add. Counters and histograms
//    shard their state by thread (kMetricShards cache-line-padded slots,
//    round-robin assigned on first use per thread), so concurrent request
//    threads never contend on a line. Reads (Value / Snapshot) sum the
//    shards — they are O(shards) and meant for scrape time, not per
//    request.
//  * Instruments are append-only and pointer-stable: Get* registers on
//    first use (one mutex acquisition) and returns a pointer that stays
//    valid for the registry's lifetime, so callers cache it and never
//    touch the registry mutex again.
//  * Exposition is built in: PrometheusText() renders the whole registry
//    in Prometheus text format (histograms as cumulative `_bucket{le=}`
//    series plus `_sum`/`_count`), ToJson() as a JSON document with
//    p50/p95/p99/max readouts per histogram.
//
// Naming convention: an instrument name may carry Prometheus-style labels
// inline — `knnshap_requests_total{method="exact"}`. The registry treats
// the whole string as the key; exposition splits base name and labels.
//
// Histogram bucket contract: a value v lands in the first bucket whose
// upper bound satisfies v <= bound (upper bound INCLUSIVE, lower bound
// exclusive — Prometheus `le` semantics); values above the last bound land
// in the implicit +Inf overflow bucket. Percentiles interpolate linearly
// inside a bucket and are clamped to the exact observed max, so an empty
// histogram reads 0 and a single-sample histogram reads the sample.

#ifndef KNNSHAP_OBS_METRICS_H_
#define KNNSHAP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace knnshap {

class JsonValue;

/// Number of per-thread shards behind each counter/histogram. More threads
/// than shards still work (two threads may share a slot); 16 covers the
/// request pools this project runs.
inline constexpr size_t kMetricShards = 16;

namespace internal {
/// This thread's shard index (round-robin assigned on first use).
size_t ThisThreadShard();
/// CAS-loop add for pre-C++20-hardware atomic doubles (relaxed).
void AtomicAddDouble(std::atomic<double>* target, double delta);
/// CAS-loop max (relaxed).
void AtomicMaxDouble(std::atomic<double>* target, double value);
}  // namespace internal

/// Monotonic counter. Add() is one relaxed fetch_add on the caller's
/// thread shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over shards (scrape-time read; not linearizable with writers, as
  /// is standard for statistical counters).
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Point-in-time value (queue depth, in-flight requests). Set/Add are a
/// single atomic — gauges are not hot-path instruments here.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Merged, immutable view of a histogram at one scrape.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< Finite upper bounds, ascending.
  std::vector<uint64_t> counts;  ///< Per-bucket; counts.size() == bounds.size()+1
                                 ///< (last = +Inf overflow bucket).
  uint64_t count = 0;            ///< Total observations.
  double sum = 0.0;              ///< Sum of observed values.
  double max = 0.0;              ///< Largest observed value (0 when empty).

  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// owning bucket, clamped to `max`. Returns 0 on an empty histogram —
  /// never divides by zero. A single-sample histogram returns the sample.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram with per-thread shards; Observe() is one bucket
/// fetch_add plus two relaxed CAS updates (sum, max) on the caller's shard.
class Histogram {
 public:
  /// `bounds` are the finite upper bucket bounds, strictly ascending; an
  /// implicit +Inf overflow bucket is always appended.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& Bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
    std::atomic<uint64_t> count{0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Default latency buckets, in seconds: 1µs .. 10s on a 1–2.5–5 decade
/// grid, the range a valuation request can realistically span.
const std::vector<double>& LatencyBucketsSeconds();

/// The registry: named instruments, created on first Get*, pointer-stable.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Registers with the given bounds on first use; later calls return the
  /// existing instrument (bounds argument ignored). Default: latency grid.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>* bounds = nullptr);

  /// Scrape-time views, sorted by instrument name.
  struct CounterEntry {
    std::string name;
    uint64_t value;
  };
  struct GaugeEntry {
    std::string name;
    int64_t value;
  };
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot snapshot;
  };
  struct RegistrySnapshot {
    std::vector<CounterEntry> counters;
    std::vector<GaugeEntry> gauges;
    std::vector<HistogramEntry> histograms;
  };
  RegistrySnapshot Snapshot() const;

  /// Prometheus text exposition of the whole registry (the serve `metrics`
  /// op returns this).
  std::string PrometheusText() const;

  /// JSON document: {"counters":{name:value},"gauges":{...},
  /// "histograms":{name:{count,sum,max,p50,p95,p99,buckets:[{le,count}]}}}.
  /// `knnshap_serve --metrics-file` dumps this at exit.
  JsonValue ToJson() const;

  /// Process-wide default registry (tools that want one without plumbing).
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace knnshap

#endif  // KNNSHAP_OBS_METRICS_H_
