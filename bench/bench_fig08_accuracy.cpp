// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 8: prediction accuracy of KNN (K = 1, 2, 5) vs logistic
// regression on deep-feature-like data. The claim: with good features KNN
// is competitive with logistic regression, which justifies using the KNN
// SV as a value proxy for other classifiers (Sec 7).

#include <vector>

#include "bench_util.h"
#include "dataset/synthetic.h"
#include "knn/knn_classifier.h"
#include "ml/logistic_regression.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  bench::Banner("Figure 8 — KNN vs logistic regression accuracy on deep features",
                "KNN (K=1,2,5) is comparable to logistic regression "
                "(paper: CIFAR 81-87%, ImageNet 73-84%, Yahoo 90-98%)");

  // The deep-feature presets are engineered for *contrast*; raw class
  // separability there is near-perfect, unlike real embeddings whose label
  // noise / class overlap caps accuracy. Injecting label noise models that
  // irreducible error and lands each dataset in the accuracy band the
  // paper reports (CIFAR 81-87%, ImageNet 73-84%, Yahoo 90-98%).
  struct Preset {
    const char* name;
    size_t size;
    Dataset (*make)(size_t, Rng*);
    double label_noise;
  };
  std::vector<Preset> presets = {
      {"cifar10-like", static_cast<size_t>(12000 * cli.Scale()), MakeCifar10Like,
       0.14},
      {"imagenet-like", static_cast<size_t>(20000 * cli.Scale()), MakeImageNetLike,
       0.22},
      {"yahoo10m-like", static_cast<size_t>(12000 * cli.Scale()), MakeYahoo10mLike,
       0.05},
  };

  CsvWriter csv(cli.CsvPath());
  csv.Header({"knn1", "knn2", "knn5", "logistic"});
  bench::Row("%-15s %8s %8s %8s %20s\n", "dataset", "1NN", "2NN", "5NN",
             "logistic regression");

  for (const auto& preset : presets) {
    Rng rng(21);
    Dataset data = preset.make(preset.size, &rng);
    Rng nrng(23);
    int num_classes = 1;
    for (int label : data.labels) num_classes = std::max(num_classes, label + 1);
    for (auto& label : data.labels) {
      if (nrng.NextDouble() < preset.label_noise && num_classes > 1) {
        int wrong = static_cast<int>(
            nrng.NextIndex(static_cast<uint64_t>(num_classes - 1)));
        if (wrong >= label) ++wrong;
        label = wrong;
      }
    }
    Rng srng(22);
    auto split = SplitTrainTest(data, 0.2, &srng);
    double acc[3];
    int ks[3] = {1, 2, 5};
    for (int i = 0; i < 3; ++i) {
      KnnClassifier knn(&split.train, ks[i]);
      acc[i] = knn.Accuracy(split.test);
    }
    LogisticRegression lr;
    lr.Fit(split.train);
    double lr_acc = lr.Accuracy(split.test);
    bench::Row("%-15s %7.1f%% %7.1f%% %7.1f%% %19.1f%%\n", preset.name,
               100 * acc[0], 100 * acc[1], 100 * acc[2], 100 * lr_acc);
    csv.Row({acc[0], acc[1], acc[2], lr_acc});
  }
  return 0;
}
