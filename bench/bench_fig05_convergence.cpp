// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 5: the baseline Monte-Carlo estimate of the SV converges to the
// exact algorithm's output. 1000 MNIST-like training points, 100 test
// points, K = 1 (the paper's setup). We report max |MC - exact| and the
// Pearson correlation as the permutation count grows; the estimates are
// identical regardless of how prefix utilities are evaluated, so the
// incremental engine is used to keep the bench fast.

#include <cmath>

#include "bench_util.h"
#include "core/exact_knn_shapley.h"
#include "core/improved_mc.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/stats.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const size_t n = static_cast<size_t>(1000 * cli.Scale());
  const size_t n_test = static_cast<size_t>(100 * cli.Scale());
  const int k = 1;

  bench::Banner("Figure 5 — MC estimate converges to the exact SV (MNIST-like)",
                "max error shrinks ~1/sqrt(T); scatter tightens onto the diagonal");

  Rng rng(42);
  Dataset train = MakeMnistLike(n, &rng);
  Rng trng(43);
  Dataset test = MakeMnistLike(n_test, &trng);

  WallTimer exact_timer;
  auto exact = ExactKnnShapley(train, test, k);
  bench::Row("exact algorithm: %.3f s for N=%zu, Ntest=%zu\n\n", exact_timer.Seconds(),
             n, n_test);

  CsvWriter csv(cli.CsvPath());
  csv.Header({"permutations", "max_error", "pearson"});
  bench::Row("%14s %14s %12s\n", "permutations", "max|MC-exact|", "pearson");

  IncrementalKnnUtility utility(&train, &test, k, KnnTask::kClassification);
  Rng perm_rng(7);
  std::vector<double> sums(n, 0.0);
  int64_t t = 0;
  const int64_t max_t = 3000;
  int64_t next_report = 10;
  while (t < max_t) {
    ++t;
    auto perm = perm_rng.Permutation(static_cast<int>(n));
    utility.Reset();
    double prev = utility.EmptyValue();
    for (int player : perm) {
      double cur = utility.AddPlayer(player);
      sums[static_cast<size_t>(player)] += cur - prev;
      prev = cur;
    }
    if (t == next_report || t == max_t) {
      std::vector<double> estimate(n);
      for (size_t i = 0; i < n; ++i) estimate[i] = sums[i] / static_cast<double>(t);
      double err = MaxAbsDifference(estimate, exact);
      double rho = PearsonCorrelation(estimate, exact);
      bench::Row("%14lld %14.6f %12.4f\n", static_cast<long long>(t), err, rho);
      csv.Row({static_cast<double>(t), err, rho});
      next_report *= 3;
    }
  }
  bench::Row("\n(The paper's Fig 5 scatter corresponds to the final column: with\n"
             "enough permutations every MC value lies on the diagonal.)\n");
  return 0;
}
