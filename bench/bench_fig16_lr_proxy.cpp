// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 16: the KNN SV as a proxy for other models' values (Sec 7).
// On an Iris-like dataset, the exact KNN SV is compared with Monte-Carlo
// Shapley values of a logistic-regression utility (test accuracy after
// retraining on each coalition). The paper's claim: the two are clearly
// correlated, so the O(N log N) KNN SV can stand in for expensive model
// valuations.

#include <vector>

#include "bench_util.h"
#include "core/baseline_mc.h"
#include "core/exact_knn_shapley.h"
#include "core/utility.h"
#include "dataset/synthetic.h"
#include "ml/logistic_regression.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const size_t n_train = static_cast<size_t>(cli.GetInt("train", 30));
  const size_t n_test = 60;
  const int k = 5;
  const int64_t permutations = cli.GetInt("perms", 600);

  bench::Banner("Figure 16 — KNN SV vs logistic-regression SV (Iris-like)",
                "positive correlation: KNN SV is a usable proxy for the "
                "(expensive) LR valuation");

  Rng rng(111);
  Dataset data = MakeIrisLike(n_train + n_test, &rng);
  Rng srng(112);
  auto split = SplitTrainTest(data, static_cast<double>(n_test) / data.Size(), &srng);
  const Dataset& train = split.train;
  const Dataset& test = split.test;

  // KNN SV: exact, O(N log N).
  WallTimer knn_timer;
  auto knn_sv = ExactKnnShapley(train, test, k);
  double knn_s = knn_timer.Seconds();

  // LR SV: baseline MC, each utility evaluation retrains the model.
  LogisticRegressionOptions lr_options;
  lr_options.iterations = 80;
  lr_options.num_classes = 3;
  CallableUtility lr_utility(
      static_cast<int>(train.Size()), [&](std::span<const int> subset) {
        LogisticRegression lr(lr_options);
        lr.FitSubset(train, subset);
        return lr.Accuracy(test);
      });
  BaselineMcOptions mc_options;
  mc_options.max_permutations = permutations;
  mc_options.seed = 9;
  WallTimer lr_timer;
  auto lr_sv = BaselineMcShapley(lr_utility, mc_options);
  double lr_s = lr_timer.Seconds();

  bench::Row("%zu training points; KNN exact %.3fs vs LR MC (%lld perms, %lld "
             "retrainings) %.1fs\n\n",
             train.Size(), knn_s, static_cast<long long>(lr_sv.permutations),
             static_cast<long long>(lr_sv.utility_evaluations), lr_s);
  bench::Row("correlation(KNN SV, LR SV): pearson=%.4f  spearman=%.4f\n\n",
             PearsonCorrelation(knn_sv, lr_sv.shapley),
             SpearmanCorrelation(knn_sv, lr_sv.shapley));

  bench::Row("%8s %6s %14s %14s\n", "point", "label", "knn_sv", "lr_sv");
  for (size_t i = 0; i < train.Size(); ++i) {
    bench::Row("%8zu %6d %14.5f %14.5f\n", i, train.labels[i], knn_sv[i],
               lr_sv.shapley[i]);
  }

  CsvWriter csv(cli.CsvPath());
  csv.Header({"point", "label", "knn_sv", "lr_sv"});
  for (size_t i = 0; i < train.Size(); ++i) {
    csv.Row({static_cast<double>(i), static_cast<double>(train.labels[i]),
             knn_sv[i], lr_sv.shapley[i]});
  }
  return 0;
}
