// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 6: runtime of the three SV computation methods vs training-set
// size on bootstrapped MNIST-like data (eps = delta = 0.1, K = 1,
// single-data-per-seller). The exact algorithm beats the baseline MC by
// orders of magnitude, and the tuned LSH approximation overtakes the exact
// algorithm as N grows (panel b: the gap widens with N because the
// bootstrapped contrast grows).
//
// The baseline's cost at large N is prohibitive by design — that is the
// paper's point — so beyond --baseline-cap points (default 2000) we
// measure one permutation and extrapolate total = per-permutation time x
// the Hoeffding permutation count, marked "est".

#include <cmath>
#include <vector>

#include "bench_util.h"
#include "core/baseline_mc.h"
#include "core/bennett.h"
#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const double eps = 0.1, delta = 0.1;
  const int k = 1;
  const size_t n_test = 10;
  const size_t baseline_cap = static_cast<size_t>(cli.GetInt("baseline-cap", 2000));

  bench::Banner(
      "Figure 6 — runtime vs training size (unweighted KNN, eps=delta=0.1, K=1)",
      "exact is orders of magnitude faster than baseline MC; LSH overtakes "
      "exact at large N and the gap grows with N");

  // One mixture instance; queries are held-out rows of the SAME instance
  // (a fresh generator call would draw different class means and put the
  // queries nowhere near the training clusters).
  Rng seed_rng(1);
  Dataset base_all = MakeMnistLike(2000 + n_test, &seed_rng);
  std::vector<int> base_rows, query_rows;
  for (int i = 0; i < 2000; ++i) base_rows.push_back(i);
  for (size_t i = 0; i < n_test; ++i) query_rows.push_back(2000 + static_cast<int>(i));
  Dataset base = base_all.Subset(base_rows);
  Dataset test = base_all.Subset(query_rows);

  CsvWriter csv(cli.CsvPath());
  csv.Header({"n", "exact_s", "lsh_s", "baseline_s", "baseline_estimated",
              "contrast", "exact_over_lsh", "baseline_over_exact"});
  bench::Row("%9s %11s %11s %14s %10s %12s %14s\n", "N", "exact(s)", "lsh(s)",
             "baseline(s)", "contrast", "exact/lsh", "baseline/exact");

  std::vector<size_t> sizes = {1000, 3000, 10000, 30000, 100000};
  for (auto& s : sizes) s = static_cast<size_t>(s * cli.Scale());

  for (size_t n : sizes) {
    Rng rng(100 + n);
    Dataset train = Bootstrap(base, n, &rng);

    // --- exact (Algorithm 1), serial to mirror the paper's single-core runs.
    WallTimer exact_timer;
    auto exact = ExactKnnShapley(train, test, k, /*parallel=*/false);
    double exact_s = exact_timer.Seconds();

    // --- LSH (Theorem 4): tune to the bootstrapped contrast, D_mean = 1.
    Rng crng(300 + n);
    const int k_star = KStar(k, eps);
    auto contrast = EstimateRelativeContrast(train, test, k_star, n_test,
                                             std::min<size_t>(n, 3000), &crng);
    Dataset norm_train = train;
    norm_train.features.Scale(1.0 / contrast.d_mean);
    Dataset norm_test = test;
    norm_test.features.Scale(1.0 / contrast.d_mean);
    LshConfig config = TuneForContrast(n, contrast.c_k, k_star, delta);
    LshIndex index(&norm_train.features, config);
    WallTimer lsh_timer;
    auto lsh = LshKnnShapley(norm_train, norm_test, k, eps, index, nullptr,
                             /*parallel=*/false);
    double lsh_s = lsh_timer.Seconds();

    // --- baseline MC (Sec 2.2): measured outright at a capped size, then
    // extrapolated with the baseline's O(N^2 d) per-permutation cost model
    // (each of the N prefix evaluations scans an O(N)-point prefix).
    int64_t t_hoeffding = HoeffdingPermutations(static_cast<int64_t>(n), eps, delta,
                                                1.0 / k);
    double baseline_s;
    bool estimated = n > baseline_cap;
    {
      size_t n_meas = std::min(n, baseline_cap);
      Rng mrng(400 + n);
      Dataset measured_train = Bootstrap(base, n_meas, &mrng);
      KnnSubsetUtility utility(&measured_train, &test, k, KnnTask::kClassification);
      BaselineMcOptions options;
      options.max_permutations = 2;
      options.seed = 9;
      WallTimer timer;
      BaselineMcShapley(utility, options);
      double per_perm = timer.Seconds() / static_cast<double>(options.max_permutations);
      double scale_up = static_cast<double>(n) / static_cast<double>(n_meas);
      baseline_s = per_perm * scale_up * scale_up * static_cast<double>(t_hoeffding);
    }

    bench::Row("%9zu %11.3f %11.3f %13.1f%s %10.3f %12.2fx %13.0fx\n", n, exact_s,
               lsh_s, baseline_s, estimated ? "*" : " ", contrast.c_k,
               exact_s / lsh_s, baseline_s / exact_s);
    csv.Row({static_cast<double>(n), exact_s, lsh_s, baseline_s,
             estimated ? 1.0 : 0.0, contrast.c_k, exact_s / lsh_s,
             baseline_s / exact_s});
  }
  bench::Row("\n* baseline extrapolated: measured per-permutation cost x Hoeffding "
             "permutation count (running it outright is the point of the paper).\n");
  return 0;
}
