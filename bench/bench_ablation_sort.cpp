// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Ablation A3 (google-benchmark): retrieval strategies inside the exact /
// truncated Shapley computation for one query —
//   * full argsort of all N training points (Algorithm 1's literal step);
//   * bounded-heap partial top-K* selection (enough for Theorem 2);
//   * kd-tree exact top-K* (the classic [MA98] alternative to LSH).
// Partial selection wins once K* << N; the kd-tree depends on dimension.

#include <benchmark/benchmark.h>

#include "dataset/synthetic.h"
#include "knn/kd_tree.h"
#include "knn/neighbors.h"
#include "util/random.h"

using namespace knnshap;

namespace {

Dataset MakeData(size_t n) {
  Rng rng(1);
  return MakeMnistLike(n, &rng);
}

void BM_FullArgsort(benchmark::State& state) {
  Dataset data = MakeData(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  std::vector<float> query(data.Dim());
  for (auto& c : query) c = static_cast<float>(rng.NextGaussian(0.0, 0.3));
  for (auto _ : state) {
    auto order = ArgsortByDistance(data.features, query);
    benchmark::DoNotOptimize(order);
  }
}

void BM_PartialTopKStar(benchmark::State& state) {
  Dataset data = MakeData(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  std::vector<float> query(data.Dim());
  for (auto& c : query) c = static_cast<float>(rng.NextGaussian(0.0, 0.3));
  const size_t k_star = 10;  // eps = 0.1
  for (auto _ : state) {
    auto top = TopKNeighbors(data.features, query, k_star);
    benchmark::DoNotOptimize(top);
  }
}

void BM_KdTreeTopKStar(benchmark::State& state) {
  Dataset data = MakeData(static_cast<size_t>(state.range(0)));
  KdTree tree(&data.features);
  Rng rng(2);
  std::vector<float> query(data.Dim());
  for (auto& c : query) c = static_cast<float>(rng.NextGaussian(0.0, 0.3));
  const size_t k_star = 10;
  for (auto _ : state) {
    auto top = tree.Query(query, k_star);
    benchmark::DoNotOptimize(top);
  }
}

}  // namespace

BENCHMARK(BM_FullArgsort)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PartialTopKStar)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KdTreeTopKStar)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
