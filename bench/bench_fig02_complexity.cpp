// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 2: the paper's complexity table for computing the KNN SV. This
// harness prints the analytic bounds implemented by the library side by
// side with measured exemplars (tiny instances) demonstrating each regime.

#include <cmath>

#include "bench_util.h"
#include "core/bennett.h"
#include "core/exact_knn_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "util/cli.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  bench::Banner("Figure 2 — time complexity for computing the SV for KNN models",
                "exact unweighted: N log N; LSH: N^{g} log N sublinear when C>1; "
                "weighted: N^K; multi-seller: M^K; MC bounds per Sec 2.2 / Thm 5");

  const double eps = 0.1, delta = 0.1;
  bench::Row("%-34s | %-28s | %s\n", "setting", "exact", "(eps,delta)-approximate");
  bench::Row("%-34s | %-28s | %s\n", "----------------------------------",
             "----------------------------", "----------------------------");
  bench::Row("%-34s | %-28s | %s\n", "baseline (Sec 2.2)", "2^N * N log N",
             "N^2/eps^2 log N log(N/delta) (Hoeffding)");
  bench::Row("%-34s | %-28s | %s\n", "unweighted KNN classifier (Thm 1/4)",
             "N log N", "N^{h(eps,K)} log N log(K*/delta) (LSH)");
  bench::Row("%-34s | %-28s | %s\n", "unweighted KNN regression (Thm 6)", "N log N",
             "-");
  bench::Row("%-34s | %-28s | %s\n", "weighted KNN (Thm 7)", "N^K",
             "N/eps^2 logK log(K/delta) (Thm 5)");
  bench::Row("%-34s | %-28s | %s\n", "multi-seller KNN (Thm 8)", "M^K",
             "N/eps^2 logK log(K/delta) (Thm 5)");

  bench::Row("\nconcrete bound instantiations (eps=delta=0.1, r=1/K):\n");
  bench::Row("%10s %6s | %14s %14s %16s\n", "N", "K", "Hoeffding T", "Bennett T*",
             "approx T~ (Eq134)");
  for (int64_t n : {1000LL, 100000LL, 10000000LL}) {
    for (int k : {1, 5}) {
      double r = 1.0 / k;
      bench::Row("%10lld %6d | %14lld %14lld %16lld\n",
                 static_cast<long long>(n), k,
                 static_cast<long long>(HoeffdingPermutations(n, eps, delta, r)),
                 static_cast<long long>(BennettPermutations(n, k, eps, delta, r)),
                 static_cast<long long>(ApproxBennettPermutations(k, eps, delta, r)));
    }
  }

  bench::Row("\nLSH exponent h(eps,K) = g(C_{K*}) on the contrast presets:\n");
  bench::Row("%-26s %10s %10s\n", "preset", "contrast", "g(C)");
  Rng rng(1);
  for (auto [name, contrast] :
       {std::pair{"deep-like(high)", 1.55}, std::pair{"gist-like(mid)", 1.35},
        std::pair{"dogfish-like(low)", 1.12}}) {
    double width = SelectWidth(contrast);
    bench::Row("%-26s %10.3f %10.3f\n", name, contrast, GExponent(contrast, width));
  }

  bench::Row("\nexact-weighted evaluation counts (Eq 78 bound, utility evals):\n");
  bench::Row("%8s %4s %18s\n", "N", "K", "evaluations");
  for (int n : {50, 100, 200}) {
    for (int k : {1, 2, 3}) {
      bench::Row("%8d %4d %18.3g\n", n, k, WeightedShapleyEvalCount(n, k));
    }
  }
  return 0;
}
