// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 17 (Appendix A.1): the Figure 7 runtime table repeated for
// K = 2 and K = 5. The paper's observation: runtimes barely differ from
// the K = 1 case and the LSH speedup (3-5x) persists.

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const double eps = 0.1;
  const size_t n_queries = 30;

  bench::Banner("Figure 17 (App A.1) — per-query runtime for K = 2 and K = 5",
                "the 3-5x LSH speedup persists; runtimes are close to K=1");

  struct Preset {
    std::string name;
    size_t size;
    Dataset (*make)(size_t, Rng*);
  };
  std::vector<Preset> presets = {
      {"cifar10-like", static_cast<size_t>(60000 * cli.Scale()), MakeCifar10Contrast},
      {"imagenet-like", static_cast<size_t>(100000 * cli.Scale()),
       MakeImageNetContrast},
      {"yahoo10m-like", static_cast<size_t>(200000 * cli.Scale()),
       MakeYahoo10mContrast},
  };

  CsvWriter csv(cli.CsvPath());
  csv.Header({"preset", "k", "exact_ms", "lsh_ms", "speedup"});
  bench::Row("%-15s %9s | %12s %12s %8s | %12s %12s %8s\n", "dataset", "size",
             "exact K=2", "lsh K=2", "x", "exact K=5", "lsh K=5", "x");

  for (size_t pi = 0; pi < presets.size(); ++pi) {
    const auto& preset = presets[pi];
    // Held-out rows of the same mixture instance, split into evaluation
    // queries and a validation slice for empirical parameter selection.
    const size_t n_validation = 20;
    Rng rng(11);
    Dataset all = preset.make(preset.size + n_queries + n_validation, &rng);
    std::vector<int> train_rows, query_rows, validation_rows;
    for (size_t i = 0; i < preset.size; ++i) train_rows.push_back(static_cast<int>(i));
    for (size_t i = 0; i < n_queries; ++i) {
      query_rows.push_back(static_cast<int>(preset.size + i));
    }
    for (size_t i = 0; i < n_validation; ++i) {
      validation_rows.push_back(static_cast<int>(preset.size + n_queries + i));
    }
    Dataset train = all.Subset(train_rows);
    Dataset test = all.Subset(query_rows);
    Dataset validation = all.Subset(validation_rows);
    Rng crng(13);
    auto base = EstimateRelativeContrast(train, test, 10, n_queries, 3000, &crng);
    train.features.Scale(1.0 / base.d_mean);
    test.features.Scale(1.0 / base.d_mean);
    validation.features.Scale(1.0 / base.d_mean);

    double ms[2][2];
    int ks[2] = {2, 5};
    for (int i = 0; i < 2; ++i) {
      int k = ks[i];
      const int k_star = KStar(k, eps);
      Rng c2(14);
      auto contrast =
          EstimateRelativeContrast(train, test, k_star, n_queries, 3000, &c2);
      WallTimer exact_timer;
      ExactKnnShapley(train, test, k, /*parallel=*/false);
      ms[i][0] = exact_timer.Millis() / static_cast<double>(n_queries);
      LshConfig config =
          TuneLshEmpirically(train, validation, k, eps, contrast.c_k);
      LshIndex index(&train.features, config);
      WallTimer lsh_timer;
      LshKnnShapley(train, test, k, eps, index, nullptr, /*parallel=*/false);
      ms[i][1] = lsh_timer.Millis() / static_cast<double>(n_queries);
      csv.Row({static_cast<double>(pi), static_cast<double>(k), ms[i][0], ms[i][1],
               ms[i][0] / ms[i][1]});
    }
    bench::Row("%-15s %9zu | %10.3fms %10.3fms %7.2fx | %10.3fms %10.3fms %7.2fx\n",
               preset.name.c_str(), preset.size, ms[0][0], ms[0][1],
               ms[0][0] / ms[0][1], ms[1][0], ms[1][1], ms[1][0] / ms[1][1]);
  }
  return 0;
}
