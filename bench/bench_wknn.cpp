// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// WKNN-Shapley (arXiv:2401.11103) vs the O(N^K) Theorem-7 recursion: the
// quadratic counting algorithm must dominate the exact weighted method at
// every feasible shape, agree with it within the discretization bound, and
// scale to corpora Theorem 7 cannot touch via the deterministic truncation.
//
//   bench_wknn                    # full run (results land in BENCH_wknn.json)
//   bench_wknn --smoke            # CI-sized run
//   bench_wknn --json=out.json    # result path

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/weighted_knn_shapley.h"
#include "core/wknn_shapley.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace knnshap;

namespace {

struct HeadToHead {
  size_t n = 0;
  int k = 0;
  double weighted_s = 0.0;
  double fast_s = 0.0;
  double speedup = 0.0;
  double gap = 0.0;    // max |weighted - weighted-fast|
  double bound = 0.0;  // discretization bound (max over queries)
};

HeadToHead RunHeadToHead(size_t n, int k, int bits, const Dataset& test) {
  Rng rng(91);
  Dataset train = MakeDogFishLike(n, &rng);

  WeightedShapleyOptions exact_options;
  exact_options.k = k;
  exact_options.weights.kernel = WeightKernel::kInverseDistance;
  exact_options.task = KnnTask::kWeightedClassification;
  WallTimer exact_timer;
  std::vector<double> exact_sv =
      ExactWeightedKnnShapley(train, test, exact_options, /*parallel=*/false);
  const double exact_s = exact_timer.Seconds();

  WknnShapleyOptions fast_options;
  fast_options.k = k;
  fast_options.weight_bits = bits;
  fast_options.weights.kernel = WeightKernel::kInverseDistance;
  WallTimer fast_timer;
  std::vector<double> fast_sv =
      WknnShapley(train, test, fast_options, /*parallel=*/false);
  const double fast_s = fast_timer.Seconds();

  double bound = 0.0;
  for (size_t j = 0; j < test.Size(); ++j) {
    WknnQueryContext ctx = MakeWknnQueryContext(
        train, test.features.Row(j), test.labels[j], fast_options);
    bound = std::max(bound, WknnDiscretizationBound(ctx, k));
  }

  HeadToHead result;
  result.n = n;
  result.k = k;
  result.weighted_s = exact_s;
  result.fast_s = fast_s;
  result.speedup = exact_s / fast_s;
  result.gap = MaxAbsDifference(exact_sv, fast_sv);
  result.bound = bound;
  return result;
}

struct Truncation {
  size_t n = 0;
  double exact_s = 0.0;
  double approx_s = 0.0;
  double speedup = 0.0;
  double budget = 0.0;
  double observed = 0.0;  // max |exact - approx|, must be <= budget
  int rank = 0;           // truncation rank q*
};

Truncation RunTruncation(size_t n, int k, double budget, const Dataset& test) {
  Rng rng(92);
  Dataset train = MakeDogFishLike(n, &rng);
  WknnShapleyOptions options;
  options.k = k;
  options.weights.kernel = WeightKernel::kInverseDistance;

  WallTimer exact_timer;
  std::vector<double> exact_sv =
      WknnShapley(train, test, options, /*parallel=*/false);
  const double exact_s = exact_timer.Seconds();

  options.approx_error = budget;
  WallTimer approx_timer;
  std::vector<double> approx_sv =
      WknnShapley(train, test, options, /*parallel=*/false);
  const double approx_s = approx_timer.Seconds();

  Truncation result;
  result.n = n;
  result.exact_s = exact_s;
  result.approx_s = approx_s;
  result.speedup = exact_s / approx_s;
  result.budget = budget;
  result.observed = MaxAbsDifference(exact_sv, approx_sv);
  result.rank =
      WknnCoalitionWeights(static_cast<int>(n), k).TruncationRank(budget);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool smoke = cli.Has("smoke");
  const std::string json_path = cli.GetString("json", "BENCH_wknn.json");
  const int bits = cli.GetInt("weight_bits", 3);
  const double budget = cli.GetDouble("approx_error", 0.01);

  bench::Banner(
      "bench_wknn — weighted-fast (arXiv:2401.11103) vs weighted (Thm 7)",
      "the quadratic recursion replaces O(N^K) at >=10x at the largest "
      "feasible Theorem-7 shape and scales beyond it via truncation");

  Rng trng(90);
  Dataset test = MakeDogFishLike(4, &trng);

  bench::Row("(a) head-to-head vs the O(N^K) exact weighted method, b = %d\n",
             bits);
  bench::Row("%8s %4s %14s %14s %10s %14s %14s\n", "N", "K", "weighted(s)",
             "fast(s)", "speedup", "max gap", "disc bound");
  std::vector<HeadToHead> head;
  const std::vector<std::pair<size_t, int>> shapes =
      smoke ? std::vector<std::pair<size_t, int>>{{60, 2}, {80, 3}}
            : std::vector<std::pair<size_t, int>>{
                  {100, 2}, {200, 2}, {100, 3}, {140, 3}, {200, 3}};
  for (auto [n, k] : shapes) {
    HeadToHead r = RunHeadToHead(n, k, bits, test);
    head.push_back(r);
    bench::Row("%8zu %4d %14.3f %14.3f %9.1fx %14.5f %14.5f\n", r.n, r.k,
               r.weighted_s, r.fast_s, r.speedup, r.gap, r.bound);
  }
  const HeadToHead& largest = head.back();

  bench::Row("\n(b) deterministic truncation at budget %.3g (K = 3), exact "
             "weighted infeasible here\n",
             budget);
  bench::Row("%8s %12s %12s %10s %8s %14s\n", "N", "exact(s)", "approx(s)",
             "speedup", "q*", "observed err");
  std::vector<Truncation> trunc;
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{500} : std::vector<size_t>{1000, 2000};
  for (size_t n : sizes) {
    Truncation r = RunTruncation(n, 3, budget, test);
    trunc.push_back(r);
    bench::Row("%8zu %12.3f %12.3f %9.1fx %8d %14.6f\n", r.n, r.exact_s,
               r.approx_s, r.speedup, r.rank, r.observed);
  }

  bool ok = largest.speedup >= 10.0 && largest.gap <= largest.bound + 1e-12;
  for (const Truncation& r : trunc) ok = ok && r.observed <= r.budget + 1e-12;
  bench::Row("\n%s: fast %.1fx over weighted at N=%zu K=%d (gap %.5f <= "
             "bound %.5f)\n",
             ok ? "OK" : "FAIL", largest.speedup, largest.n, largest.k,
             largest.gap, largest.bound);

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"wknn\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"weight_bits\": %d,\n", bits);
  std::fprintf(json, "  \"queries\": %zu,\n", test.Size());
  std::fprintf(json, "  \"head_to_head\": [\n");
  for (size_t i = 0; i < head.size(); ++i) {
    const HeadToHead& r = head[i];
    std::fprintf(json,
                 "    {\"n\": %zu, \"k\": %d, \"weighted_seconds\": %.4f, "
                 "\"fast_seconds\": %.4f, \"speedup\": %.1f, \"max_gap\": "
                 "%.6f, \"discretization_bound\": %.6f}%s\n",
                 r.n, r.k, r.weighted_s, r.fast_s, r.speedup, r.gap, r.bound,
                 i + 1 < head.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"speedup_over_weighted_at_largest_shape\": %.1f,\n",
               largest.speedup);
  std::fprintf(json, "  \"largest_shape\": {\"n\": %zu, \"k\": %d},\n",
               largest.n, largest.k);
  std::fprintf(json, "  \"gap_within_discretization_bound\": %s,\n",
               largest.gap <= largest.bound + 1e-12 ? "true" : "false");
  std::fprintf(json, "  \"truncation\": [\n");
  for (size_t i = 0; i < trunc.size(); ++i) {
    const Truncation& r = trunc[i];
    std::fprintf(json,
                 "    {\"n\": %zu, \"budget\": %.4g, \"exact_seconds\": %.4f, "
                 "\"approx_seconds\": %.4f, \"speedup\": %.1f, "
                 "\"truncation_rank\": %d, \"observed_error\": %.6f}%s\n",
                 r.n, r.budget, r.exact_s, r.approx_s, r.speedup, r.rank,
                 r.observed, i + 1 < trunc.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"ok\": %s\n", ok ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
