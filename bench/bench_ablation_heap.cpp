// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Ablation A2 (google-benchmark): the heap-incremental utility update of
// Algorithm 2 vs naively re-evaluating (re-ranking) the prefix after every
// insertion. One benchmark iteration = one full permutation pass. The heap
// path is O(N log K) while the naive path is O(N^2 log N) — the gap is the
// entire speedup story of the improved MC estimator.

#include <benchmark/benchmark.h>

#include "core/improved_mc.h"
#include "core/utility.h"
#include "dataset/synthetic.h"
#include "util/random.h"

using namespace knnshap;

namespace {

struct Fixture {
  Dataset train;
  Dataset test;
  Fixture(size_t n) {
    Rng rng(1);
    train = MakeMnistLike(n, &rng);
    Rng trng(2);
    test = MakeMnistLike(2, &trng);
  }
};

void BM_HeapIncremental(benchmark::State& state) {
  Fixture fixture(static_cast<size_t>(state.range(0)));
  IncrementalKnnUtility utility(&fixture.train, &fixture.test, 5,
                                KnnTask::kClassification);
  Rng rng(3);
  const int n = utility.NumPlayers();
  for (auto _ : state) {
    auto perm = rng.Permutation(n);
    utility.Reset();
    double acc = 0.0;
    for (int p : perm) acc += utility.AddPlayer(p);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_NaiveRerank(benchmark::State& state) {
  Fixture fixture(static_cast<size_t>(state.range(0)));
  KnnSubsetUtility utility(&fixture.train, &fixture.test, 5,
                           KnnTask::kClassification);
  Rng rng(3);
  const int n = utility.NumPlayers();
  for (auto _ : state) {
    auto perm = rng.Permutation(n);
    std::vector<int> prefix;
    prefix.reserve(static_cast<size_t>(n));
    double acc = 0.0;
    for (int p : perm) {
      prefix.push_back(p);
      acc += utility.Value(prefix);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

BENCHMARK(BM_HeapIncremental)->Arg(200)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NaiveRerank)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
