// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 11: permutation budgets of the MC stopping rules vs training-set
// size (unweighted KNN classifier, eps = delta = 0.1, r = 1/K):
//   * Hoeffding (baseline) keeps growing with log N — too loose;
//   * Bennett (Theorem 5) is essentially flat in N — the right trend;
//   * the heuristic (stop when estimates move < eps/50) is smallest;
//   * "ground truth": the empirically measured number of permutations
//     until max |MC - exact| <= eps (computed while N is small enough).

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/bennett.h"
#include "core/exact_knn_shapley.h"
#include "core/improved_mc.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace knnshap;

namespace {

// Ground truth for the (eps, delta) guarantee: the smallest permutation
// count T such that across independent runs at least a 1-delta fraction
// satisfies max|estimate - exact| <= eps at T. Each run records its
// error trajectory; T is read off the per-T delta-quantile.
int64_t MeasureGroundTruth(const Dataset& train, const Dataset& test, int k,
                           double eps, double delta, int64_t cap) {
  auto exact = ExactKnnShapley(train, test, k);
  IncrementalKnnUtility utility(&train, &test, k, KnnTask::kClassification);
  const int n = utility.NumPlayers();
  const int runs = 15;
  const int64_t step = 5;
  const size_t checkpoints = static_cast<size_t>(cap / step);
  // errors[run][checkpoint]
  std::vector<std::vector<double>> errors(runs,
                                          std::vector<double>(checkpoints, 0.0));
  for (int run = 0; run < runs; ++run) {
    Rng rng(1000 + static_cast<uint64_t>(run));
    std::vector<double> sums(static_cast<size_t>(n), 0.0);
    for (int64_t t = 1; t <= cap; ++t) {
      auto perm = rng.Permutation(n);
      utility.Reset();
      double prev = utility.EmptyValue();
      for (int player : perm) {
        double cur = utility.AddPlayer(player);
        sums[static_cast<size_t>(player)] += cur - prev;
        prev = cur;
      }
      if (t % step == 0) {
        double worst = 0.0;
        for (int i = 0; i < n; ++i) {
          worst = std::max(worst, std::abs(sums[static_cast<size_t>(i)] /
                                               static_cast<double>(t) -
                                           exact[static_cast<size_t>(i)]));
        }
        errors[static_cast<size_t>(run)][static_cast<size_t>(t / step) - 1] = worst;
      }
    }
  }
  const int allowed_failures = static_cast<int>(delta * runs);  // floor
  for (size_t c = 0; c < checkpoints; ++c) {
    int failures = 0;
    for (int run = 0; run < runs; ++run) {
      failures += errors[static_cast<size_t>(run)][c] > eps;
    }
    if (failures <= allowed_failures) return static_cast<int64_t>(c + 1) * step;
  }
  return cap;
}

// Permutations consumed by the heuristic stopping rule.
int64_t MeasureHeuristic(const Dataset& train, const Dataset& test, int k,
                         double eps, double delta) {
  IncrementalKnnUtility utility(&train, &test, k, KnnTask::kClassification);
  ImprovedMcOptions options;
  options.k = k;
  options.epsilon = eps;
  options.delta = delta;
  options.utility_range = 1.0 / k;
  options.stopping = McStoppingRule::kHeuristic;
  options.seed = 5;
  return ImprovedMcShapley(&utility, options).permutations;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const double eps = 0.1, delta = 0.1;
  const int k = 1;
  const double r = 1.0 / k;
  const int64_t measure_cap =
      static_cast<int64_t>(cli.GetInt("measure-cap", 20000));

  bench::Banner("Figure 11 — permutation budgets vs N (eps=delta=0.1, K=1)",
                "Hoeffding grows with N; Bennett is ~flat and tracks the ground "
                "truth's trend; the heuristic stops earliest");

  CsvWriter csv(cli.CsvPath());
  csv.Header({"n", "hoeffding", "bennett", "heuristic", "ground_truth"});
  bench::Row("%10s %12s %12s %12s %14s\n", "N", "Hoeffding", "Bennett T*",
             "heuristic", "ground truth");

  std::vector<int64_t> sizes = {100, 1000, 10000, 100000, 1000000};
  for (auto& s : sizes) s = static_cast<int64_t>(s * cli.Scale());
  const int64_t measurable = 10000;  // run actual MC only up to this N

  // A *hard* dataset (overlapping classes + label noise) and a single
  // test point, so the marginal phi_i is genuinely random and the MC
  // estimate needs real permutation counts — the regime Fig 11 studies.
  SyntheticSpec spec;
  spec.name = "noisy-mnist-like";
  spec.num_classes = 2;
  spec.dim = 16;
  spec.size = 16000;
  spec.cluster_stddev = 0.6;
  spec.label_noise = 0.25;
  Rng rng(61);
  Dataset base = MakeGaussianMixture(spec, &rng);
  SyntheticSpec tspec = spec;
  tspec.size = 1;
  Rng trng(62);
  Dataset test = MakeGaussianMixture(tspec, &trng);

  for (int64_t n : sizes) {
    int64_t hoeffding = HoeffdingPermutations(n, eps, delta, r);
    int64_t bennett = BennettPermutations(n, k, eps, delta, r);
    int64_t heuristic = -1, ground = -1;
    if (n <= measurable) {
      Rng brng(100 + n);
      Dataset train = Bootstrap(base, static_cast<size_t>(n), &brng);
      heuristic = MeasureHeuristic(train, test, k, eps, delta);
      ground = MeasureGroundTruth(train, test, k, eps, delta,
                                  std::min<int64_t>(measure_cap, 2000));
    }
    if (heuristic >= 0) {
      bench::Row("%10lld %12lld %12lld %12lld %14lld\n", static_cast<long long>(n),
                 static_cast<long long>(hoeffding), static_cast<long long>(bennett),
                 static_cast<long long>(heuristic), static_cast<long long>(ground));
    } else {
      bench::Row("%10lld %12lld %12lld %12s %14s\n", static_cast<long long>(n),
                 static_cast<long long>(hoeffding), static_cast<long long>(bennett),
                 "-", "-");
    }
    csv.Row({static_cast<double>(n), static_cast<double>(hoeffding),
             static_cast<double>(bennett), static_cast<double>(heuristic),
             static_cast<double>(ground)});
  }
  bench::Row("\n(- : running the estimator outright at this N is out of the "
             "default budget; the analytic rows still show the trend.)\n");
  return 0;
}
