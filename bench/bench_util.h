// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Shared plumbing for the figure-reproduction harnesses: banner printing,
// fixed-width rows, and the --scale / --csv flags every bench honors.

#ifndef KNNSHAP_BENCH_BENCH_UTIL_H_
#define KNNSHAP_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/cli.h"
#include "util/csv.h"
#include "util/timer.h"

namespace knnshap {
namespace bench {

/// Prints the experiment banner: which paper artifact this reproduces and
/// the shape EXPERIMENTS.md checks.
inline void Banner(const std::string& figure, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper shape: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// printf-style row helper (flushes so interleaved progress is visible).
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace knnshap

#endif  // KNNSHAP_BENCH_BENCH_UTIL_H_
