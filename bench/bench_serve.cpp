// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// bench_serve — throughput and latency of the serving subsystem. Drives a
// scripted mixed-method JSONL workload through RequestPipeline in three
// configurations and checks they answer byte-identically:
//
//   serial_rehash   one request at a time, corpus rehashed per request —
//                   the pre-serve-subsystem knnshap_serve behavior
//   serial          one request at a time, CorpusStore fingerprints
//                   (isolates the incremental-fingerprint lever)
//   pipelined       concurrent dispatch + store fingerprints (the default
//                   serve path; the concurrency lever needs real cores —
//                   workers and hardware_concurrency are recorded)
//
// Then measures cache-serving latency: the same value workload replayed
// against a warm engine (all hits), and against a *fresh* pipeline that
// warm-started from a save_cache/load_cache round trip (the restart
// story). Results land in BENCH_serve.json.
//
//   bench_serve --smoke            # CI-sized run
//   bench_serve --workers=4       # pipelined worker count
//   bench_serve --json=out.json   # result path (default BENCH_serve.json)

#include <cstdio>
#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/pipeline.h"
#include "util/json.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace knnshap;

namespace {

std::string RowsJson(size_t n, size_t dim, int num_classes, bool regression,
                     uint64_t seed) {
  Rng rng(seed);
  std::string out = "[";
  for (size_t r = 0; r < n; ++r) {
    if (r > 0) out += ",";
    out += "[";
    for (size_t d = 0; d < dim; ++d) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f,", rng.NextGaussian());
      out += buf;
    }
    if (regression) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.4f", rng.NextGaussian());
      out += buf;
    } else {
      out += std::to_string(rng.NextIndex(static_cast<uint64_t>(num_classes)));
    }
    out += "]";
  }
  out += "]";
  return out;
}

struct Workload {
  std::string setup;   // corpus loads
  std::string values;  // the timed value traffic
  /// The same value traffic replayed by a client that re-seeds every
  /// request (a uniform client-side knob most methods never read): the
  /// probe workload for method-scoped vs whole-struct cache fingerprints.
  std::string reseeded_values;
};

/// Mixed-method traffic: the big corpus takes exact / exact-corrected /
/// truncated / capped-mc requests (where per-request rehash hurts most),
/// the small corpus weighted + exact, the regression corpus its own
/// method. Every request carries distinct inline queries, so nothing is
/// served from the result cache within a pass.
Workload MakeWorkload(size_t big_rows, size_t big_dim, size_t requests) {
  Workload w;
  std::ostringstream setup;
  setup << R"({"op":"load","name":"big","rows":)"
        << RowsJson(big_rows, big_dim, 3, false, 1) << R"(,"target":"label"})"
        << "\n";
  setup << R"({"op":"load","name":"small","rows":)" << RowsJson(150, 16, 2, false, 2)
        << R"(,"target":"label"})" << "\n";
  setup << R"({"op":"load","name":"medium","rows":)"
        << RowsJson(5000, 16, 3, false, 4) << R"(,"target":"label"})" << "\n";
  setup << R"({"op":"load","name":"reg","rows":)" << RowsJson(2000, 32, 0, true, 3)
        << R"(,"target":"target"})" << "\n";
  w.setup = setup.str();

  // 16-slot round robin. 12 of 16 requests hit the big corpus — the
  // traffic shape where the pre-subsystem loop paid a full corpus rehash
  // per request — and the expensive-compute methods (capped mc, weighted)
  // appear at realistic minority rates so valuation cost does not drown
  // the serving-layer effects being measured.
  // Emitted twice: once as the cold traffic, once "reseeded" — the same
  // requests with a per-request "seed" field, the way a client fleet that
  // threads a seed through every call replays traffic. Only mc *declares*
  // seed (1/16 of requests), so under method-scoped fingerprints 15/16 of
  // the replay are cache hits; under whole-struct fingerprints all 16 miss.
  std::ostringstream values, reseeded;
  auto emit = [&](std::ostringstream& out, const std::string& line, uint64_t seed,
                  bool reseed) {
    out << R"({"op":"value",)";
    if (reseed) out << R"("seed":)" << (900000 + seed) << ",";
    out << line << R"(,"include_values":false})" << "\n";
  };
  auto both = [&](const std::string& line, uint64_t seed) {
    emit(values, line, seed, false);
    emit(reseeded, line, seed, true);
  };
  auto big_value = [&](size_t qseed, const char* method, size_t queries,
                       const char* extra) {
    both(R"("train":"big","queries":)" +
             RowsJson(queries, big_dim, 3, false, qseed) + R"(,"method":")" +
             method + R"(",)" + extra + R"("cache":true)",
         qseed);
  };
  for (size_t i = 0; i < requests; ++i) {
    const uint64_t qseed = 1000 + i;
    switch (i % 16) {
      case 0:
      case 2:
      case 4:
      case 8:
      case 10:
      case 12:
        big_value(qseed, "exact", 1, R"("k":5,)");
        break;
      case 1:
      case 5:
      case 6:
      case 9:
      case 14:
        big_value(qseed, "exact-corrected", 1, R"("k":5,)");
        break;
      case 13:
        big_value(qseed, "mc", 1, R"("k":3,"max_permutations":8,)");
        break;
      case 3:
        both(R"("train":"medium","queries":)" + RowsJson(2, 16, 3, false, qseed) +
                 R"(,"method":"truncated","k":5,"epsilon":0.1)",
             qseed);
        break;
      case 7:
        both(R"("train":"small","queries":)" + RowsJson(2, 16, 2, false, qseed) +
                 R"(,"method":"weighted","k":2,"kernel":"inverse","task":"weighted-classification")",
             qseed);
        break;
      case 11:
        both(R"("train":"reg","queries":)" + RowsJson(2, 32, 0, true, qseed) +
                 R"(,"method":"regression","k":5,"task":"regression")",
             qseed);
        break;
      case 15:
        both(R"("train":"small","queries":)" + RowsJson(4, 16, 2, false, qseed) +
                 R"(,"method":"exact","k":5)",
             qseed);
        break;
    }
  }
  w.values = values.str();
  w.reseeded_values = reseeded.str();
  return w;
}

struct PassResult {
  double seconds = 0.0;
  std::string output;
  size_t cache_hits = 0;
};

/// Runs setup (untimed) then the given value traffic (timed) on one
/// pipeline.
PassResult RunTraffic(RequestPipeline* pipeline, const Workload& w,
                      const std::string& traffic, bool run_setup) {
  PassResult result;
  std::ostringstream sink;
  if (run_setup) {
    std::istringstream setup(w.setup);
    pipeline->Run(setup, sink);
    sink.str("");
  }
  std::istringstream values(traffic + "{\"op\":\"sync\"}\n");
  WallTimer timer;
  pipeline->Run(values, sink);
  result.seconds = timer.Seconds();
  result.output = sink.str();
  size_t pos = 0;
  while ((pos = result.output.find("\"cache_hit\":true", pos)) != std::string::npos) {
    ++result.cache_hits;
    ++pos;
  }
  return result;
}

PassResult RunPass(RequestPipeline* pipeline, const Workload& w, bool run_setup) {
  return RunTraffic(pipeline, w, w.values, run_setup);
}

/// Outcome of a cold-pass + reseeded-replay round under one fingerprint
/// policy.
struct ReplayResult {
  size_t hits = 0;
  size_t requests = 0;
  /// Replay responses that were cache hits but returned a different
  /// summary than the cold pass — a cross-request false hit. Must be 0.
  size_t false_hits = 0;
};

/// Cold pass then the reseeded replay on a fresh pipeline with the given
/// fingerprint policy; verifies every replay *hit* returned the cold
/// pass's exact summary (a hit with different bytes would be a false hit).
ReplayResult RunReplay(const Workload& w, ThreadPool* pool, size_t cache_capacity,
                       bool method_scoped) {
  PipelineOptions options;
  options.pool = pool;
  options.emit_timing = false;
  options.engine.result_cache_capacity = cache_capacity;
  options.engine.method_scoped_fingerprints = method_scoped;
  RequestPipeline pipeline(options);
  PassResult cold = RunTraffic(&pipeline, w, w.values, /*run_setup=*/true);
  PassResult replay =
      RunTraffic(&pipeline, w, w.reseeded_values, /*run_setup=*/false);

  ReplayResult result;
  result.hits = replay.cache_hits;
  std::istringstream cold_lines(cold.output), replay_lines(replay.output);
  std::string cold_line, replay_line;
  while (std::getline(cold_lines, cold_line) &&
         std::getline(replay_lines, replay_line)) {
    JsonValue cold_response = ParseJson(cold_line).value;
    JsonValue replay_response = ParseJson(replay_line).value;
    if (!replay_response.Has("cache_hit")) continue;  // sync/echo lines
    ++result.requests;
    if (replay_response.Get("cache_hit").AsBool() &&
        replay_response.Get("summary").Dump() !=
            cold_response.Get("summary").Dump()) {
      ++result.false_hits;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool smoke = cli.Has("smoke");
  const std::string json_path = cli.GetString("json", "BENCH_serve.json");
  const size_t workers = static_cast<size_t>(cli.GetInt("workers", static_cast<int>(std::max(1u, std::thread::hardware_concurrency()))));
  const size_t big_rows = static_cast<size_t>(
      cli.GetInt("rows", smoke ? 16000 : 80000));
  const size_t big_dim = static_cast<size_t>(cli.GetInt("dim", smoke ? 64 : 96));
  const size_t requests = static_cast<size_t>(
      cli.GetInt("requests", smoke ? 64 : 192));

  bench::Banner("bench_serve — serial vs pipelined JSONL serving",
                "pipelined serve >= 3x serial-with-rehash on a multi-core "
                "mixed-method workload; ordered responses byte-identical");
  bench::Row("corpus %zux%zu, %zu requests, %zu workers (hw %u)\n\n", big_rows,
             big_dim, requests, workers, std::thread::hardware_concurrency());

  Workload workload = MakeWorkload(big_rows, big_dim, requests);

  // --- Arm 1: the pre-subsystem loop — serial, full rehash per request.
  // Cache capacity covers the whole workload so the warm-replay and
  // save/load passes measure hits, not LRU churn.
  PipelineOptions serial_rehash_options;
  serial_rehash_options.pipelined = false;
  serial_rehash_options.emit_timing = false;
  serial_rehash_options.trust_store_fingerprints = false;
  serial_rehash_options.engine.result_cache_capacity = requests + 8;
  RequestPipeline serial_rehash_pipeline(serial_rehash_options);
  PassResult serial_rehash = RunPass(&serial_rehash_pipeline, workload, true);
  bench::Row("serial+rehash   %7.3f s   (%.1f req/s)\n", serial_rehash.seconds,
             requests / serial_rehash.seconds);

  // --- Arm 2: serial with store fingerprints (the fingerprint lever).
  PipelineOptions serial_options = serial_rehash_options;
  serial_options.trust_store_fingerprints = true;
  RequestPipeline serial_pipeline(serial_options);
  PassResult serial = RunPass(&serial_pipeline, workload, true);
  bench::Row("serial          %7.3f s   (%.1f req/s)\n", serial.seconds,
             requests / serial.seconds);

  // --- Arm 3: the serve path — pipelined + store fingerprints.
  ThreadPool pool(workers);
  PipelineOptions pipelined_options;
  pipelined_options.pool = &pool;
  pipelined_options.emit_timing = false;
  pipelined_options.engine.result_cache_capacity = requests + 8;
  RequestPipeline pipelined_pipeline(pipelined_options);
  PassResult pipelined = RunPass(&pipelined_pipeline, workload, true);
  bench::Row("pipelined       %7.3f s   (%.1f req/s)\n", pipelined.seconds,
             requests / pipelined.seconds);

  const bool identical = serial_rehash.output == serial.output &&
                         serial.output == pipelined.output;
  bench::Row("ordered responses identical across arms: %s\n",
             identical ? "yes" : "NO — BUG");

  // --- Cache serving: warm engine replay, and a save/restart/load replay.
  PassResult warm = RunPass(&pipelined_pipeline, workload, false);
  bench::Row("warm replay     %7.3f s   (%zu/%zu hits)\n", warm.seconds,
             warm.cache_hits, requests);

  const std::string cache_path = "bench_serve.cache";
  {
    std::istringstream save(R"({"op":"save_cache","path":")" + cache_path + "\"}\n");
    std::ostringstream sink;
    pipelined_pipeline.Run(save, sink);
  }
  PipelineOptions restart_options = pipelined_options;
  RequestPipeline restarted(restart_options);
  {
    std::istringstream load(workload.setup + R"({"op":"load_cache","path":")" +
                            cache_path + "\"}\n");
    std::ostringstream sink;
    restarted.Run(load, sink);
  }
  PassResult restart_warm = RunPass(&restarted, workload, false);
  bench::Row("restart+load_cache replay %7.3f s   (%zu/%zu hits)\n\n",
             restart_warm.seconds, restart_warm.cache_hits, requests);
  std::remove(cache_path.c_str());

  // --- Instrumentation overhead: the warm replay (all cache hits — the
  // pure serving path, where per-request instrument cost is largest
  // relative to work) in three observability configurations. Min-of-N
  // replays per arm rejects scheduler noise. The contract being gated:
  // with tracing disabled (the default — metrics registry wired, no
  // per-query spans) the serving path regresses < 1% against a pipeline
  // with every metrics clock read compiled out.
  auto make_arm = [&](bool observability, bool trace_all) {
    PipelineOptions arm = pipelined_options;
    arm.observability = observability;
    arm.trace_all = trace_all;
    auto arm_pipeline = std::make_unique<RequestPipeline>(arm);
    RunPass(arm_pipeline.get(), workload, /*run_setup=*/true);  // cold fill
    return arm_pipeline;
  };
  auto obs_off_arm = make_arm(false, false);
  auto obs_on_arm = make_arm(true, false);
  auto traced_arm = make_arm(true, true);
  // Interleaved reps: a slow-drifting machine biases every arm equally
  // instead of whichever arm ran last.
  double warm_obs_off = 1e100, warm_obs_on = 1e100, warm_traced = 1e100;
  for (int rep = 0; rep < 7; ++rep) {
    warm_obs_off =
        std::min(warm_obs_off, RunPass(obs_off_arm.get(), workload, false).seconds);
    warm_obs_on =
        std::min(warm_obs_on, RunPass(obs_on_arm.get(), workload, false).seconds);
    warm_traced =
        std::min(warm_traced, RunPass(traced_arm.get(), workload, false).seconds);
  }
  const double obs_overhead_pct =
      (warm_obs_on / warm_obs_off - 1.0) * 100.0;
  const double trace_overhead_pct =
      (warm_traced / warm_obs_off - 1.0) * 100.0;
  // 1ms absolute slack: below it the warm replay is inside timer/scheduler
  // noise and a percentage is meaningless.
  const bool overhead_ok =
      warm_obs_on <= warm_obs_off * 1.01 + 0.001;
  bench::Row("warm replay, obs off   %7.3f s\n", warm_obs_off);
  bench::Row("warm replay, obs on    %7.3f s   (%+.2f%% — gate: < 1%%%s)\n",
             warm_obs_on, obs_overhead_pct, overhead_ok ? "" : " FAILED");
  bench::Row("warm replay, traced    %7.3f s   (%+.2f%%, opt-in)\n\n",
             warm_traced, trace_overhead_pct);

  // --- Mixed-method reseeded replay: the method-scoped fingerprint lever.
  // A client fleet that threads a fresh "seed" through every request
  // replays the workload. Whole-struct fingerprints treat the seed as
  // identity for every method and miss everything; method-scoped
  // fingerprints hit for every method that does not declare seed (15/16
  // of this traffic — only mc reads it). A hit must return the cold
  // pass's exact summary: false_hits counts scoped-key aliasing and must
  // be zero.
  ReplayResult whole_struct =
      RunReplay(workload, &pool, requests + 8, /*method_scoped=*/false);
  ReplayResult scoped =
      RunReplay(workload, &pool, requests + 8, /*method_scoped=*/true);
  bench::Row("reseeded replay hit rate: whole-struct %zu/%zu, "
             "method-scoped %zu/%zu (false hits: %zu)\n",
             whole_struct.hits, whole_struct.requests, scoped.hits,
             scoped.requests, scoped.false_hits + whole_struct.false_hits);
  const bool replay_improved = scoped.hits > whole_struct.hits &&
                               scoped.false_hits == 0 &&
                               whole_struct.false_hits == 0;
  if (!replay_improved) {
    bench::Row("method-scoped fingerprints did NOT strictly improve the "
               "replay hit rate — BUG\n");
  }

  // --- Shard scaling: the shard router's single-query parallelism.
  // Sequential HandleSync (no cross-request concurrency) with the result
  // cache off, so the timing isolates the per-query fan-out + merge path;
  // full exact (r = N) is the method where the shards parallelize the
  // most work. Cold includes the fit (plan, norms, workers); warm is the
  // steady state, min-of-N. Responses must stay byte-identical across
  // every shard count. The warm >= 2x gate at 4 shards needs real cores
  // and a full-size run; otherwise the numbers are recorded and the gate
  // reported unenforced.
  const size_t shard_rows = static_cast<size_t>(
      cli.GetInt("shard-rows", smoke ? 4096 : 20000));
  const size_t shard_requests = smoke ? 8 : 16;
  std::vector<JsonValue> shard_traffic;
  for (size_t i = 0; i < shard_requests; ++i) {
    shard_traffic.push_back(
        ParseJson(R"({"op":"value","train":"sh","queries":)" +
                  RowsJson(2, 32, 3, false, 2000 + i) +
                  R"(,"method":"exact","k":5,"cache":false,"include_values":false})")
            .value);
  }
  const JsonValue shard_corpus =
      ParseJson(R"({"op":"load","name":"sh","rows":)" +
                RowsJson(shard_rows, 32, 3, false, 17) + R"(,"target":"label"})")
          .value;
  struct ShardArm {
    int shards = 1;
    double cold = 0.0;
    double warm = 0.0;
  };
  std::vector<ShardArm> shard_arms;
  std::string shard_baseline_output;
  bool shard_identical = true;
  for (int shards : {1, 2, 4, 8}) {
    PipelineOptions shard_options;
    shard_options.emit_timing = false;
    shard_options.shards = shards;
    RequestPipeline shard_pipeline(shard_options);
    shard_pipeline.HandleSync(shard_corpus);
    auto run_once = [&](std::string* out) {
      WallTimer timer;
      for (const JsonValue& request : shard_traffic) {
        std::string line = shard_pipeline.HandleSync(request).Dump();
        if (out != nullptr) {
          *out += line;
          *out += '\n';
        }
      }
      return timer.Seconds();
    };
    ShardArm arm;
    arm.shards = shards;
    std::string output;
    arm.cold = run_once(&output);
    arm.warm = 1e100;
    for (int rep = 0; rep < (smoke ? 2 : 5); ++rep) {
      arm.warm = std::min(arm.warm, run_once(nullptr));
    }
    if (shards == 1) {
      shard_baseline_output = output;
    } else if (output != shard_baseline_output) {
      shard_identical = false;
    }
    shard_arms.push_back(arm);
    bench::Row("shards=%d        cold %7.3f s   warm %7.3f s   (%.1f req/s)\n",
               shards, arm.cold, arm.warm, shard_requests / arm.warm);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const double shard_speedup_4 = shard_arms[0].warm / shard_arms[2].warm;
  const bool shard_gate_enforced = !smoke && hw >= 4;
  const std::string shard_gate_reason =
      shard_gate_enforced
          ? "full run on >= 4 cores"
          : (smoke ? "smoke run"
                   : "machine has " + std::to_string(hw) +
                         " cores; the 2x warm gate needs >= 4");
  const bool shard_gate_ok = !shard_gate_enforced || shard_speedup_4 >= 2.0;
  bench::Row("shard responses identical across counts: %s\n",
             shard_identical ? "yes" : "NO — BUG");
  bench::Row("shard warm speedup at 4 shards: %.2fx (gate 2x: %s)\n\n",
             shard_speedup_4,
             shard_gate_enforced ? (shard_gate_ok ? "ok" : "FAILED")
                                 : "not enforced");

  const double speedup_total = serial_rehash.seconds / pipelined.seconds;
  const double speedup_fingerprint = serial_rehash.seconds / serial.seconds;
  const double speedup_concurrency = serial.seconds / pipelined.seconds;
  bench::Row("speedup pipelined vs serial+rehash: %.2fx "
             "(fingerprints %.2fx, concurrency %.2fx)\n",
             speedup_total, speedup_fingerprint, speedup_concurrency);

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"serve\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"corpus_rows\": %zu,\n  \"corpus_dim\": %zu,\n", big_rows,
               big_dim);
  std::fprintf(json, "  \"requests\": %zu,\n", requests);
  std::fprintf(json,
               "  \"methods\": [\"exact\", \"exact-corrected\", \"truncated\", "
               "\"regression\", \"mc\", \"weighted\"],\n");
  std::fprintf(json, "  \"workers\": %zu,\n", workers);
  std::fprintf(json, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(json, "  \"serial_rehash_seconds\": %.4f,\n", serial_rehash.seconds);
  std::fprintf(json, "  \"serial_seconds\": %.4f,\n", serial.seconds);
  std::fprintf(json, "  \"pipelined_seconds\": %.4f,\n", pipelined.seconds);
  std::fprintf(json, "  \"speedup_pipelined_vs_serial_rehash\": %.2f,\n",
               speedup_total);
  std::fprintf(json, "  \"speedup_from_incremental_fingerprints\": %.2f,\n",
               speedup_fingerprint);
  std::fprintf(json, "  \"speedup_from_concurrent_dispatch\": %.2f,\n",
               speedup_concurrency);
  std::fprintf(json, "  \"ordered_responses_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(json, "  \"cold_seconds\": %.4f,\n", pipelined.seconds);
  std::fprintf(json, "  \"warm_cache_seconds\": %.4f,\n", warm.seconds);
  std::fprintf(json, "  \"warm_cache_hits\": %zu,\n", warm.cache_hits);
  std::fprintf(json, "  \"restart_load_cache_seconds\": %.4f,\n",
               restart_warm.seconds);
  std::fprintf(json, "  \"restart_load_cache_hits\": %zu,\n", restart_warm.cache_hits);
  std::fprintf(json, "  \"warm_replay_obs_off_seconds\": %.4f,\n", warm_obs_off);
  std::fprintf(json, "  \"warm_replay_obs_on_seconds\": %.4f,\n", warm_obs_on);
  std::fprintf(json, "  \"warm_replay_traced_seconds\": %.4f,\n", warm_traced);
  std::fprintf(json, "  \"obs_overhead_pct\": %.2f,\n", obs_overhead_pct);
  std::fprintf(json, "  \"trace_overhead_pct\": %.2f,\n", trace_overhead_pct);
  std::fprintf(json, "  \"obs_overhead_under_1pct\": %s,\n",
               overhead_ok ? "true" : "false");
  std::fprintf(json, "  \"shard_rows\": %zu,\n", shard_rows);
  std::fprintf(json, "  \"shard_requests\": %zu,\n", shard_requests);
  std::fprintf(json, "  \"shard_scaling\": [\n");
  for (size_t i = 0; i < shard_arms.size(); ++i) {
    std::fprintf(json,
                 "    {\"shards\": %d, \"cold_seconds\": %.4f, "
                 "\"warm_seconds\": %.4f}%s\n",
                 shard_arms[i].shards, shard_arms[i].cold, shard_arms[i].warm,
                 i + 1 < shard_arms.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"shard_responses_identical\": %s,\n",
               shard_identical ? "true" : "false");
  std::fprintf(json, "  \"shard_warm_speedup_4_shards\": %.2f,\n",
               shard_speedup_4);
  std::fprintf(json, "  \"shard_gate_enforced\": %s,\n",
               shard_gate_enforced ? "true" : "false");
  std::fprintf(json, "  \"shard_gate_reason\": \"%s\",\n",
               shard_gate_reason.c_str());
  std::fprintf(json, "  \"shard_gate_ok\": %s,\n",
               shard_gate_ok ? "true" : "false");
  std::fprintf(json, "  \"reseeded_replay_requests\": %zu,\n", scoped.requests);
  std::fprintf(json, "  \"reseeded_replay_hits_whole_struct_fingerprints\": %zu,\n",
               whole_struct.hits);
  std::fprintf(json, "  \"reseeded_replay_hits_method_scoped_fingerprints\": %zu,\n",
               scoped.hits);
  std::fprintf(json, "  \"reseeded_replay_hit_rate_whole_struct\": %.4f,\n",
               scoped.requests ? double(whole_struct.hits) / scoped.requests : 0.0);
  std::fprintf(json, "  \"reseeded_replay_hit_rate_method_scoped\": %.4f,\n",
               scoped.requests ? double(scoped.hits) / scoped.requests : 0.0);
  std::fprintf(json, "  \"reseeded_replay_false_hits\": %zu\n",
               scoped.false_hits + whole_struct.false_hits);
  std::fprintf(json, "}\n");
  std::fclose(json);
  bench::Row("wrote %s\n", json_path.c_str());
  return identical && replay_improved && overhead_ok && shard_identical &&
                 shard_gate_ok
             ? 0
             : 2;
}
