// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 10: the theoretical complexity exponent of the LSH method.
//   (a) as eps grows, K* = max(K, 1/eps) shrinks, the relative contrast
//       C_{K*} grows, and the exponent g(C_{K*}) (with the width chosen to
//       minimize it) drops below 1 — except at eps = 0.001 where C < 1 and
//       LSH is theoretically worse than the exact algorithm;
//   (b) g(C_{K*}) as a function of the projection width r: large after a
//       knee, then flat — motivating the paper's grid search.

#include <vector>

#include "bench_util.h"
#include "core/lsh_knn_shapley.h"
#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const int k = 1;
  const size_t n = static_cast<size_t>(30000 * cli.Scale());

  bench::Banner("Figure 10 — g(C_{K*}) and C_{K*} vs eps; g vs projection width",
                "C grows with eps; g < 1 for all eps except eps=0.001; g(r) "
                "levels off past a knee");

  // A low-contrast dataset puts the eps = 0.001 regime near C ~ 1, where
  // the paper finds LSH theoretically unattractive. Queries are fresh
  // draws (not training rows) so D_1 > 0.
  Rng rng(51);
  Dataset train = MakeLowContrast(n, &rng);
  Rng qrng(55);
  Dataset queries = MakeLowContrast(20, &qrng);
  // Normalize D_mean = 1 once, with a clean estimate.
  {
    Rng crng(52);
    auto base = EstimateRelativeContrast(train, queries, 1, 20, 4000, &crng);
    train.features.Scale(1.0 / base.d_mean);
    queries.features.Scale(1.0 / base.d_mean);
  }

  CsvWriter csv(cli.CsvPath());
  csv.Header({"eps", "k_star", "contrast", "g"});

  bench::Row("(a) eps sweep (K=1)\n");
  bench::Row("%10s %8s %12s %14s %12s\n", "eps", "K*", "C_{K*}", "best width r",
             "g(C_{K*})");
  for (double eps : {0.001, 0.01, 0.1, 1.0}) {
    int k_star = KStar(k, eps);
    if (static_cast<size_t>(k_star) >= train.Size()) k_star = static_cast<int>(train.Size()) - 1;
    Rng crng(53);
    auto est = EstimateRelativeContrast(train, queries, k_star, 20, 4000, &crng);
    double width = SelectWidth(std::max(est.c_k, 0.5), 0.25, 32.0, 96);
    double g = GExponent(est.c_k, width);
    bench::Row("%10.3f %8d %12.4f %14.3f %12.4f%s\n", eps, k_star, est.c_k, width, g,
               g < 1.0 ? "  (sublinear)" : "  (worse than exact!)");
    csv.Row({eps, static_cast<double>(k_star), est.c_k, g});
  }

  bench::Row("\n(b) g vs projection width r, for the eps=0.01 and eps=0.1 contrasts\n");
  bench::Row("%10s", "width r");
  std::vector<double> widths = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  for (double w : widths) bench::Row(" %9.2f", w);
  bench::Row("\n");
  for (double eps : {0.01, 0.1}) {
    int k_star = KStar(k, eps);
    Rng crng(54);
    auto est = EstimateRelativeContrast(train, queries, k_star, 20, 4000, &crng);
    bench::Row("eps=%-6.2f", eps);
    for (double w : widths) bench::Row(" %9.4f", GExponent(est.c_k, w));
    bench::Row("\n");
  }
  return 0;
}
