// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 14: data valuation on the dog-fish dataset (K = 3):
//   (a) the top-valued training points for a given test point share its
//       label (semantically correlated neighbors);
//   (b) unweighted and inverse-distance-weighted KNN SVs nearly coincide
//       (high-dimensional distances make the weights ~uniform);
//   (c) label-inconsistent top-K neighbors are mostly fish, so fish points
//       mislead predictions and the dog class accrues more value.

#include <vector>

#include "bench_util.h"
#include "core/exact_knn_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "dataset/synthetic.h"
#include "knn/neighbors.h"
#include "market/valuation_report.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const int k = 3;
  const size_t n = static_cast<size_t>(200 * cli.Scale());

  bench::Banner("Figure 14 — dog-fish valuation (K=3)",
                "(a) top values share the query label; (b) unweighted ~ weighted "
                "SV; (c) inconsistent neighbors are mostly fish; dogs worth more");

  Rng rng(91);
  Dataset train = MakeDogFishLike(n, &rng);
  Rng trng(92);
  Dataset test = MakeDogFishLike(40, &trng);
  const char* kClassNames[2] = {"dog", "fish"};

  // (a) top-valued points for one dog test image.
  size_t dog_query = 0;
  while (test.labels[dog_query] != 0) ++dog_query;
  Dataset one_test = test.Subset(std::vector<int>{static_cast<int>(dog_query)});
  auto sv_single = ExactKnnShapley(train, one_test, k);
  auto top = TopValued(sv_single, 5);
  bench::Row("(a) top-5 valued training points for one %s test point:\n",
             kClassNames[one_test.labels[0]]);
  size_t same_label = 0;
  for (size_t r = 0; r < top.size(); ++r) {
    int label = train.labels[static_cast<size_t>(top[r].index)];
    same_label += label == one_test.labels[0];
    bench::Row("    #%zu point %5d (%s)  sv=%+.5f\n", r + 1, top[r].index,
               kClassNames[label], top[r].value);
  }
  bench::Row("    -> %zu/5 share the test label\n\n", same_label);

  // (b) unweighted vs weighted SV over the whole test set.
  auto unweighted = ExactKnnShapley(train, test, k);
  WeightedShapleyOptions options;
  options.k = k;
  options.weights.kernel = WeightKernel::kInverseDistance;
  options.task = KnnTask::kWeightedClassification;
  WallTimer wtimer;
  auto weighted = ExactWeightedKnnShapley(train, test, options);
  bench::Row("(b) unweighted vs inverse-distance-weighted SV (N=%zu, %.1fs):\n", n,
             wtimer.Seconds());
  bench::Row("    pearson=%.4f  spearman=%.4f  max|diff|=%.5f\n\n",
             PearsonCorrelation(unweighted, weighted),
             SpearmanCorrelation(unweighted, weighted),
             MaxAbsDifference(unweighted, weighted));

  // (c) label-inconsistent neighbors by class + per-class value totals.
  size_t inconsistent[2] = {0, 0};
  std::vector<int> histogram(static_cast<size_t>(k) + 1, 0);
  for (size_t j = 0; j < test.Size(); ++j) {
    auto nns = TopKNeighbors(train.features, test.features.Row(j),
                             static_cast<size_t>(k));
    int bad = 0;
    for (const auto& nn : nns) {
      int label = train.labels[static_cast<size_t>(nn.index)];
      if (label != test.labels[j]) {
        ++inconsistent[static_cast<size_t>(label)];
        ++bad;
      }
    }
    ++histogram[static_cast<size_t>(bad)];
  }
  bench::Row("(c) label-inconsistent top-%d neighbors: dog-labeled %zu, "
             "fish-labeled %zu\n", k, inconsistent[0], inconsistent[1]);
  bench::Row("    test points by #inconsistent neighbors:");
  for (int b = 0; b <= k; ++b) bench::Row("  %d:%d", b, histogram[static_cast<size_t>(b)]);
  auto class_totals = GroupTotals(unweighted, train.labels, 2);
  bench::Row("\n    class value totals: dog %.4f vs fish %.4f\n",
             class_totals[0], class_totals[1]);

  CsvWriter csv(cli.CsvPath());
  csv.Header({"point", "unweighted_sv", "weighted_sv", "label"});
  for (size_t i = 0; i < train.Size(); ++i) {
    csv.Row({static_cast<double>(i), unweighted[i], weighted[i],
             static_cast<double>(train.labels[i])});
  }
  return 0;
}
