// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Ablation A1: stopping rules inside Algorithm 2 (weighted KNN, where the
// exact algorithm is impractical). For each N we report the permutation
// budget and wall time under Hoeffding, Bennett (Theorem 5), the
// closed-form approximation T~, and the heuristic — same estimator, same
// seed, only the stopping rule changes. Bennett's N-independence is what
// makes the improved MC viable at scale (>= 2x fewer permutations than
// Hoeffding at 1e6 points in the paper).

#include <vector>

#include "bench_util.h"
#include "core/improved_mc.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const double eps = 0.1, delta = 0.1;
  const int k = 3;

  bench::Banner("Ablation A1 — stopping rules inside Algorithm 2 (weighted KNN)",
                "Bennett needs ~flat permutations vs Hoeffding's log N growth; "
                "the heuristic stops earliest");

  Rng trng(1);
  Dataset test = MakeDogFishLike(3, &trng);
  CsvWriter csv(cli.CsvPath());
  csv.Header({"n", "rule", "permutations", "seconds"});
  bench::Row("%8s %-16s %14s %12s\n", "N", "rule", "permutations", "seconds");

  std::vector<size_t> sizes = {200, 1000, 5000};
  for (auto& s : sizes) s = static_cast<size_t>(s * cli.Scale());
  struct Rule {
    const char* name;
    McStoppingRule rule;
  };
  std::vector<Rule> rules = {{"hoeffding", McStoppingRule::kHoeffding},
                             {"bennett", McStoppingRule::kBennett},
                             {"approx-bennett", McStoppingRule::kApproxBennett},
                             {"heuristic", McStoppingRule::kHeuristic}};

  for (size_t n : sizes) {
    Rng rng(2);
    Dataset train = MakeDogFishLike(n, &rng);
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      WeightConfig weights;
      weights.kernel = WeightKernel::kInverseDistance;
      IncrementalKnnUtility utility(&train, &test, k,
                                    KnnTask::kWeightedClassification, weights);
      ImprovedMcOptions options;
      options.k = k;
      options.epsilon = eps;
      options.delta = delta;
      options.utility_range = 1.0;
      options.stopping = rules[ri].rule;
      options.seed = 7;
      WallTimer timer;
      auto result = ImprovedMcShapley(&utility, options);
      bench::Row("%8zu %-16s %14lld %12.3f\n", n, rules[ri].name,
                 static_cast<long long>(result.permutations), timer.Seconds());
      csv.Row({static_cast<double>(n), static_cast<double>(ri),
               static_cast<double>(result.permutations), timer.Seconds()});
    }
  }
  return 0;
}
