// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 15: data-only vs composite game on dog-fish-like data (K = 10):
//   (a) the analyst's SV grows with the total model utility (utility is
//       varied by injecting label noise) and exceeds half of it;
//   (b) contributor SVs in the two games are correlated, composite smaller;
//   (c) as more contributors join, the analyst's share grows while the
//       average contributor value falls in both games;
//   (d) min/max contributor values fall with N; the minimum recovers
//       slightly as outliers get diluted.

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/composite_game.h"
#include "core/exact_knn_shapley.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const int k = 10;
  bench::Banner("Figure 15 — data-only vs composite game (dog-fish-like, K=10)",
                "analyst SV grows with total utility and takes >= 1/2; "
                "contributor values correlate across games; mean/max fall with N");

  Rng trng(101);
  Dataset test = MakeDogFishLike(80, &trng);
  CsvWriter csv(cli.CsvPath());
  csv.Header({"panel", "x", "series", "value"});

  // (a) utility sweep via label noise.
  bench::Row("(a) analyst SV vs total utility (label-noise sweep, N=400)\n");
  bench::Row("%12s %14s %14s %10s\n", "noise", "total utility", "analyst SV",
             "share");
  for (double noise : {0.45, 0.3, 0.15, 0.0}) {
    SyntheticSpec spec;
    spec.name = "dogfish-noise";
    spec.num_classes = 2;
    spec.dim = 32;
    spec.size = static_cast<size_t>(400 * cli.Scale());
    spec.class_separation = 1.0;
    spec.cluster_stddev = 0.5;
    spec.class_spread_scale = {1.0, 0.55};
    spec.label_noise = noise;
    Rng rng(102);
    Dataset train = MakeGaussianMixture(spec, &rng);
    auto result = CompositeKnnShapley(train, test, k);
    bench::Row("%12.2f %14.4f %14.4f %9.1f%%\n", noise, result.total_utility,
               result.analyst_value,
               result.total_utility > 0
                   ? 100.0 * result.analyst_value / result.total_utility
                   : 0.0);
    csv.Row({0, noise, 0, result.total_utility});
    csv.Row({0, noise, 1, result.analyst_value});
  }

  // (b) correlation between the games' contributor values.
  Rng rng(103);
  Dataset train = MakeDogFishLike(static_cast<size_t>(400 * cli.Scale()), &rng);
  auto data_only = ExactKnnShapley(train, test, k);
  auto composite = CompositeKnnShapley(train, test, k);
  bench::Row("\n(b) contributor SV, data-only vs composite: pearson=%.4f, "
             "mean ratio composite/data-only=%.3f\n",
             PearsonCorrelation(data_only, composite.seller_values),
             Mean(composite.seller_values) / std::max(1e-12, Mean(data_only)));

  // (c,d) contributor sweep.
  bench::Row("\n(c,d) contributor sweep (values per contributor)\n");
  bench::Row("%8s %12s %14s %14s %12s %12s\n", "N", "analyst", "mean(data-only)",
             "mean(composite)", "min(data)", "max(data)");
  std::vector<size_t> sizes = {100, 300, 600, 1200, 1800};
  for (auto& s : sizes) s = static_cast<size_t>(s * cli.Scale());
  for (size_t n : sizes) {
    Rng nrng(104);
    Dataset tr = MakeDogFishLike(n, &nrng);
    auto d = ExactKnnShapley(tr, test, k);
    auto c = CompositeKnnShapley(tr, test, k);
    double dmin = *std::min_element(d.begin(), d.end());
    double dmax = *std::max_element(d.begin(), d.end());
    bench::Row("%8zu %12.4f %14.6f %14.6f %12.6f %12.6f\n", n, c.analyst_value,
               Mean(d), Mean(c.seller_values), dmin, dmax);
    csv.Row({2, static_cast<double>(n), 0, c.analyst_value});
    csv.Row({2, static_cast<double>(n), 1, Mean(d)});
    csv.Row({2, static_cast<double>(n), 2, Mean(c.seller_values)});
    csv.Row({3, static_cast<double>(n), 0, dmin});
    csv.Row({3, static_cast<double>(n), 1, dmax});
  }
  return 0;
}
