// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 7: average runtime of the exact vs the LSH-based algorithm for
// the unweighted KNN SV of a single test point on CIFAR-10-like,
// ImageNet-like and Yahoo10m-like data (K = 1, eps = delta = 0.1).
// Default sizes are scaled down from the paper's 6e4 / 1e6 / 1e7 so the
// suite stays laptop-sized; pass --scale to enlarge (e.g. --scale=10
// restores ImageNet's 1e6). The *shape* to reproduce: LSH is 3-5x faster
// per query, and relative contrast governs how favorable LSH is.

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace knnshap;

namespace {

struct Preset {
  std::string name;
  size_t size;
  Dataset (*make)(size_t, Rng*);
};

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const int k = cli.GetInt("k", 1);
  const double eps = 0.1;  // delta enters only through the banner: the
                           // empirical tuner fixes table count from data
  const size_t n_queries = static_cast<size_t>(cli.GetInt("queries", 50));

  bench::Banner("Figure 7 — per-query runtime, exact vs LSH (K=" +
                    std::to_string(k) + ", eps=delta=0.1)",
                "LSH gives a 3-5x per-query speedup; higher-contrast datasets "
                "need fewer tables (paper: CIFAR 1.28, ImageNet 1.22, Yahoo 1.35)");

  std::vector<Preset> presets = {
      {"cifar10-like", static_cast<size_t>(60000 * cli.Scale()), MakeCifar10Contrast},
      {"imagenet-like", static_cast<size_t>(100000 * cli.Scale()),
       MakeImageNetContrast},
      {"yahoo10m-like", static_cast<size_t>(200000 * cli.Scale()),
       MakeYahoo10mContrast},
  };

  CsvWriter csv(cli.CsvPath());
  csv.Header({"size", "contrast", "exact_ms", "lsh_ms", "speedup"});
  bench::Row("%-15s %9s %10s %12s %12s %9s\n", "dataset", "size", "contrast",
             "exact(ms/q)", "lsh(ms/q)", "speedup");

  for (const auto& preset : presets) {
    // Held-out rows of the same mixture instance: one slice for parameter
    // selection (the paper's validation part, Sec 6.1) and a disjoint
    // slice for the timed evaluation.
    const size_t n_validation = 30;
    Rng rng(11);
    Dataset all = preset.make(preset.size + n_queries + n_validation, &rng);
    std::vector<int> train_rows, query_rows, validation_rows;
    for (size_t i = 0; i < preset.size; ++i) train_rows.push_back(static_cast<int>(i));
    for (size_t i = 0; i < n_queries; ++i) {
      query_rows.push_back(static_cast<int>(preset.size + i));
    }
    for (size_t i = 0; i < n_validation; ++i) {
      validation_rows.push_back(static_cast<int>(preset.size + n_queries + i));
    }
    Dataset train = all.Subset(train_rows);
    Dataset test = all.Subset(query_rows);
    Dataset validation = all.Subset(validation_rows);

    const int k_star = KStar(k, eps);
    Rng crng(13);
    auto contrast = EstimateRelativeContrast(train, test, k_star, n_queries,
                                             3000, &crng);
    train.features.Scale(1.0 / contrast.d_mean);
    test.features.Scale(1.0 / contrast.d_mean);
    validation.features.Scale(1.0 / contrast.d_mean);

    WallTimer exact_timer;
    ExactKnnShapley(train, test, k, /*parallel=*/false);
    double exact_ms = exact_timer.Millis() / static_cast<double>(n_queries);

    double validation_error = 0.0;
    LshConfig config = TuneLshEmpirically(train, validation, k, eps, contrast.c_k,
                                          256, &validation_error);
    LshIndex index(&train.features, config);
    WallTimer lsh_timer;
    LshShapleyStats stats;
    LshKnnShapley(train, test, k, eps, index, &stats, /*parallel=*/false);
    double lsh_ms = lsh_timer.Millis() / static_cast<double>(n_queries);

    bench::Row("%-15s %9zu %10.4f %12.3f %12.3f %8.2fx   (%zu tables, val err %.3f)\n",
               preset.name.c_str(), preset.size, contrast.c_k, exact_ms, lsh_ms,
               exact_ms / lsh_ms, config.num_tables, validation_error);
    csv.Row({static_cast<double>(preset.size), contrast.c_k, exact_ms, lsh_ms,
             exact_ms / lsh_ms});
  }
  bench::Row("\n(Both methods run single-threaded; per-query times are wall-clock "
             "per test point, with the LSH index build excluded as in the paper's\n"
             "amortized setting.)\n");
  return 0;
}
