// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 9: how relative contrast governs the LSH-based approximation.
// Three datasets ordered by contrast (deep-like > gist-like >
// dogfish-like), eps = 0.01 and K = 2 so K* = 100 (paper's setting, scaled
// with --eps):
//   (a) contrast C_{K*} falls as K* grows;
//   (b,c) lower-contrast datasets need more hash tables / returned points
//         to reach a given SV error;
//   (d) SV error falls as retrieval recall rises; low contrast needs
//       recall ~ 1 while high contrast tolerates recall ~ 0.7.

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/exact_knn_shapley.h"
#include "core/lsh_knn_shapley.h"
#include "dataset/contrast.h"
#include "dataset/synthetic.h"
#include "lsh/tuning.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace knnshap;

namespace {

struct Series {
  std::string name;
  Dataset train;
  Dataset test;
  double contrast = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const double eps = cli.GetDouble("eps", 0.01);
  const int k = 2;
  const int k_star = KStar(k, eps);
  const size_t n = static_cast<size_t>(20000 * cli.Scale());
  const size_t n_queries = 15;

  bench::Banner("Figure 9 — LSH behavior vs relative contrast (eps=" +
                    std::to_string(eps) + ", K=2, K*=" + std::to_string(k_star) + ")",
                "lower contrast needs more tables/returned points and recall ~1; "
                "higher contrast reaches the error budget with recall ~0.7");

  std::vector<Series> series;
  {
    Rng r1(31), r2(32), r3(33);
    series.push_back({"deep-like(high)", MakeHighContrast(n + n_queries, &r1), {}, 0});
    series.push_back({"gist-like(mid)", MakeMidContrast(n + n_queries, &r2), {}, 0});
    series.push_back({"dogfish-like(low)", MakeLowContrast(n + n_queries, &r3), {}, 0});
  }
  Rng noise_rng(34);
  for (auto& s : series) {
    // Hold out the query rows (self-distances would zero out C_1).
    std::vector<int> train_rows, query_rows;
    for (size_t i = 0; i < n; ++i) train_rows.push_back(static_cast<int>(i));
    for (size_t i = 0; i < n_queries; ++i) {
      query_rows.push_back(static_cast<int>(n + i));
    }
    s.test = s.train.Subset(query_rows);
    s.train = s.train.Subset(train_rows);
    // Real deep/gist features carry label impurity among neighbors; with
    // perfectly pure synthetic clusters the SV mass sits entirely on the
    // first few neighbors and retrieval errors would never surface. 25%
    // label noise restores the paper's error-vs-recall relationship.
    for (auto& label : s.train.labels) {
      if (noise_rng.NextDouble() < 0.25) {
        label = static_cast<int>(noise_rng.NextIndex(10));
      }
    }
  }

  // (a) contrast vs K*, normalized to D_mean = 1.
  bench::Row("(a) relative contrast C_k vs k (paper: decreasing in k)\n");
  bench::Row("%-20s", "dataset \\ k");
  std::vector<int> ks = {1, 10, 50, k_star};
  for (int kk : ks) bench::Row(" %8d", kk);
  bench::Row("\n");
  for (auto& s : series) {
    Rng crng(41);
    auto base = EstimateRelativeContrast(s.train, s.test, 1, n_queries, 3000, &crng);
    s.train.features.Scale(1.0 / base.d_mean);
    s.test.features.Scale(1.0 / base.d_mean);
    bench::Row("%-20s", s.name.c_str());
    for (int kk : ks) {
      Rng crng2(42);
      auto est = EstimateRelativeContrast(s.train, s.test, kk, n_queries, 3000, &crng2);
      if (kk == k_star) s.contrast = est.c_k;
      bench::Row(" %8.3f", est.c_k);
    }
    bench::Row("\n");
  }

  CsvWriter csv(cli.CsvPath());
  csv.Header({"series", "tables", "mean_returned", "recall", "sv_error"});

  // (b,c,d): sweep table count; measure returned points, recall, SV error.
  bench::Row("\n(b,c,d) table sweep: SV error vs tables / returned points / recall\n");
  bench::Row("%-20s %7s %10s %8s %12s\n", "dataset", "tables", "returned", "recall",
             "max SV err");
  for (size_t si = 0; si < series.size(); ++si) {
    auto& s = series[si];
    auto exact = ExactKnnShapley(s.train, s.test, k, true);
    double width = SelectWidth(std::max(s.contrast, 1.01));
    size_t m = NumProjections(s.train.Size(), width);
    for (size_t tables : {1u, 4u, 16u, 64u, 256u}) {
      LshConfig config;
      config.width = width;
      config.num_projections = m;
      config.num_tables = tables;
      config.seed = 7;
      LshIndex index(&s.train.features, config);
      LshShapleyStats stats;
      auto approx = LshKnnShapley(s.train, s.test, k, eps, index, &stats);
      double recall = 0.0;
      for (size_t q = 0; q < s.test.Size(); ++q) {
        recall += index.Recall(s.test.features.Row(q), static_cast<size_t>(k_star));
      }
      recall /= static_cast<double>(s.test.Size());
      double err = MaxAbsDifference(exact, approx);
      bench::Row("%-20s %7zu %10.1f %8.3f %12.5f%s\n", s.name.c_str(), tables,
                 stats.mean_returned, recall, err, err <= eps ? "  <= eps" : "");
      csv.Row({static_cast<double>(si), static_cast<double>(tables),
               stats.mean_returned, recall, err});
    }
  }
  return 0;
}
