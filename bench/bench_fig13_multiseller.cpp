// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 13: multi-data-per-seller unweighted KNN — exact (Theorem 8,
// O(M^K)) vs the improved MC over seller permutations:
//   (a) K = 2, seller sweep with the *total* number of training rows held
//       constant: exact grows polynomially in M, MC is insensitive (its
//       cost tracks total rows, which are fixed);
//   (b) M = 30 sellers, K sweep: exact grows with K, MC flat.

#include <vector>

#include "bench_util.h"
#include "core/improved_mc.h"
#include "core/multi_seller_shapley.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace knnshap;

namespace {

double RunExact(const Dataset& train, const OwnerAssignment& owners,
                const Dataset& test, int k, std::vector<double>* sv) {
  MultiSellerShapleyOptions options;
  options.k = k;
  options.task = KnnTask::kClassification;
  WallTimer timer;
  *sv = MultiSellerShapley(train, owners, test, options, /*parallel=*/false);
  return timer.Seconds();
}

double RunMc(const Dataset& train, const OwnerAssignment& owners,
             const Dataset& test, int k, double eps, std::vector<double>* sv,
             int64_t* permutations) {
  IncrementalKnnUtility utility(&train, &test, k, KnnTask::kClassification, {},
                                &owners);
  ImprovedMcOptions options;
  options.k = k;
  options.epsilon = eps;
  options.delta = eps;
  options.utility_range = 1.0;
  options.stopping = McStoppingRule::kHeuristic;
  options.seed = 3;
  WallTimer timer;
  auto result = ImprovedMcShapley(&utility, options);
  *sv = result.shapley;
  *permutations = result.permutations;
  return timer.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const double eps = cli.GetDouble("eps", 0.01);
  const size_t total_rows = static_cast<size_t>(600 * cli.Scale());

  bench::Banner("Figure 13 — multi-seller KNN: exact (Thm 8) vs improved MC",
                "exact is polynomial in the number of sellers M and grows with "
                "K; MC cost tracks total rows and is insensitive to M and K");

  Rng trng(81);
  Dataset test = MakeMnistLike(4, &trng);
  Rng rng(82);
  Dataset train = MakeMnistLike(total_rows, &rng);

  CsvWriter csv(cli.CsvPath());
  csv.Header({"panel", "sellers", "k", "exact_s", "mc_s", "mc_perms",
              "max_disagreement"});

  bench::Row("(a) K = 2, seller sweep (total rows fixed at %zu)\n", total_rows);
  bench::Row("%10s %12s %12s %10s %16s\n", "sellers", "exact(s)", "mc(s)",
             "mc perms", "max|exact-mc|");
  for (int m : {10, 20, 40, 80}) {
    Rng org(90 + static_cast<uint64_t>(m));
    auto owners = OwnerAssignment::Random(total_rows, m, &org);
    std::vector<double> exact_sv, mc_sv;
    int64_t perms = 0;
    double exact_s = RunExact(train, owners, test, 2, &exact_sv);
    double mc_s = RunMc(train, owners, test, 2, eps, &mc_sv, &perms);
    double gap = MaxAbsDifference(exact_sv, mc_sv);
    bench::Row("%10d %12.3f %12.3f %10lld %16.5f\n", m, exact_s, mc_s,
               static_cast<long long>(perms), gap);
    csv.Row({0, static_cast<double>(m), 2, exact_s, mc_s,
             static_cast<double>(perms), gap});
  }

  bench::Row("\n(b) M = 30 sellers, K sweep\n");
  bench::Row("%10s %12s %12s %10s %16s\n", "K", "exact(s)", "mc(s)", "mc perms",
             "max|exact-mc|");
  Rng org(99);
  auto owners = OwnerAssignment::Random(total_rows, 30, &org);
  for (int k : {1, 2, 3}) {
    std::vector<double> exact_sv, mc_sv;
    int64_t perms = 0;
    double exact_s = RunExact(train, owners, test, k, &exact_sv);
    double mc_s = RunMc(train, owners, test, k, eps, &mc_sv, &perms);
    double gap = MaxAbsDifference(exact_sv, mc_sv);
    bench::Row("%10d %12.3f %12.3f %10lld %16.5f\n", k, exact_s, mc_s,
               static_cast<long long>(perms), gap);
    csv.Row({1, 30, static_cast<double>(k), exact_s, mc_s,
             static_cast<double>(perms), gap});
  }
  return 0;
}
