// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Kernel benchmark: the pre-kernel scalar distance path (per-pair
// Distance() calls + comparator argsort — exactly what AllDistances /
// ArgsortByDistance compiled to before the batched kernel subsystem)
// against the new batched kernels, per distance kernel (blocked fallback
// and, when the CPU supports it, AVX2/FMA), plus the packed-key argsort
// against the indirect comparator std::sort. Seeds the perf trajectory:
// results land in BENCH_kernel.json.
//
// Usage:
//   bench_kernel                   # full grid (N up to 1M rows; minutes)
//   bench_kernel --smoke           # tiny grid for CI (seconds)
//   bench_kernel --json=out.json   # result path (default BENCH_kernel.json)
//
// Modes reported per (N, d, metric):
//   scalar_per_query_ms    old path: per-pair Distance() over all rows
//   kernel_ms[kind]        batched ComputeDistances with fitted norms
//   batch_kernel_ms[kind]  ComputeDistanceMatrix amortized per query
//                          (the engine's many-queries-per-corpus shape)
//   speedup[kind]          scalar / batch-kernel per-query time
//
// A second "selection" grid times the two end-to-end single-query paths the
// exact valuators actually run — distance pass + full packed argsort
// (ArgsortByDistanceInto) versus distance pass + streaming top-R selection
// (TopROrderByDistance, the approx_error path at R = K*(k, 1e-3)) — at
// corpus sizes up to 10M rows, where the argsort dominates the query. In
// --smoke mode the selection arm doubles as a perf regression gate: the
// process exits nonzero if the select path is slower than the argsort path
// at N=100k.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "knn/distance_kernel.h"
#include "knn/metric.h"
#include "knn/neighbors.h"
#include "knn/selection.h"
#include "util/random.h"

using namespace knnshap;

namespace {

struct GridPoint {
  size_t n;
  size_t d;
};

struct ModeResult {
  double kernel_ms = 0.0;        // single-query batched pass
  double batch_kernel_ms = 0.0;  // per-query cost inside a query block
  double argsort_ms = 0.0;       // packed-key argsort (distances precomputed)
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    auto row = m.MutableRow(i);
    for (auto& x : row) x = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

// Old scalar path: per-pair Distance() (one KNNSHAP_CHECK + switch per
// row), serial double accumulation.
double TimeScalar(const Matrix& corpus, const Matrix& queries, Metric metric,
                  std::vector<double>* dists) {
  WallTimer timer;
  for (size_t j = 0; j < queries.Rows(); ++j) {
    auto query = queries.Row(j);
    for (size_t i = 0; i < corpus.Rows(); ++i) {
      (*dists)[i] = Distance(corpus.Row(i), query, metric);
    }
  }
  return timer.Millis() / static_cast<double>(queries.Rows());
}

// Old ordering: indirect comparator std::sort over row indices.
double TimeComparatorArgsort(const std::vector<double>& dists, size_t repeats) {
  std::vector<int> order(dists.size());
  WallTimer timer;
  for (size_t r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&dists](int a, int b) {
      double da = dists[static_cast<size_t>(a)];
      double db = dists[static_cast<size_t>(b)];
      if (da != db) return da < db;
      return a < b;
    });
  }
  return timer.Millis() / static_cast<double>(repeats);
}

// End-to-end per-query time of the full-argsort valuation prologue:
// batched distance pass + complete packed-key rank order.
double TimeArgsortPath(const Matrix& corpus, const CorpusNorms& norms,
                       const Matrix& queries, Metric metric) {
  std::vector<int> order;
  WallTimer timer;
  for (size_t j = 0; j < queries.Rows(); ++j) {
    ArgsortByDistanceInto(corpus, queries.Row(j), metric, &norms, &order);
  }
  return timer.Millis() / static_cast<double>(queries.Rows());
}

// End-to-end per-query time of the truncated prologue: batched distance
// pass + streaming top-R selection (the approx_error > 0 path).
double TimeSelectPath(const Matrix& corpus, const CorpusNorms& norms,
                      const Matrix& queries, Metric metric, size_t r) {
  std::vector<int> order;
  WallTimer timer;
  for (size_t j = 0; j < queries.Rows(); ++j) {
    TopROrderByDistance(corpus, queries.Row(j), r, metric, &norms, &order);
  }
  return timer.Millis() / static_cast<double>(queries.Rows());
}

ModeResult TimeKernel(const Matrix& corpus, const Matrix& queries, Metric metric,
                      KernelKind kind, size_t argsort_repeats) {
  SetKernelOverride(kind);
  const CorpusNorms norms(corpus);  // fitted once, like the engine valuators
  std::vector<double> dists(corpus.Rows());
  ModeResult result;
  {
    WallTimer timer;
    for (size_t j = 0; j < queries.Rows(); ++j) {
      ComputeDistances(corpus, queries.Row(j), metric, &norms, dists);
    }
    result.kernel_ms = timer.Millis() / static_cast<double>(queries.Rows());
  }
  {
    std::vector<double> matrix(corpus.Rows() * queries.Rows());
    WallTimer timer;
    ComputeDistanceMatrix(corpus, queries, metric, &norms, matrix);
    result.batch_kernel_ms = timer.Millis() / static_cast<double>(queries.Rows());
  }
  {
    std::vector<int> order;
    WallTimer timer;
    for (size_t r = 0; r < argsort_repeats; ++r) ArgsortDistances(dists, &order);
    result.argsort_ms = timer.Millis() / static_cast<double>(argsort_repeats);
  }
  SetKernelOverride(KernelKind::kAuto);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool smoke = cli.Has("smoke");
  const std::string json_path = cli.GetString("json", "BENCH_kernel.json");
  const size_t num_queries = static_cast<size_t>(cli.GetInt("queries", smoke ? 4 : 8));

  bench::Banner("BENCH kernel — batched SIMD distance kernels vs scalar path",
                "batched kernel >= 3x over per-pair scalar at N=100k d=128 "
                "(squared-l2, fallback path)");

  std::vector<GridPoint> grid;
  if (smoke) {
    grid = {{2000, 16}, {1000, 1}, {1500, 17}};
  } else {
    grid = {{100000, 16}, {100000, 128}, {100000, 784}, {1000000, 16}};
  }
  std::vector<Metric> metrics = {Metric::kSquaredL2};
  if (!smoke) metrics.push_back(Metric::kL2);

  std::vector<KernelKind> kinds = {KernelKind::kBlocked};
  if (CpuSupportsAvx2Fma()) kinds.push_back(KernelKind::kAvx2);

  FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"kernel\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(json, "  \"queries\": %zu,\n  \"cpu_avx2_fma\": %s,\n",
               num_queries, CpuSupportsAvx2Fma() ? "true" : "false");
  std::fprintf(json, "  \"results\": [\n");

  bool first = true;
  for (const GridPoint& g : grid) {
    Matrix corpus = RandomMatrix(g.n, g.d, /*seed=*/17);
    Matrix queries = RandomMatrix(num_queries, g.d, /*seed=*/29);
    const size_t argsort_repeats = smoke ? 3 : (g.n >= 1000000 ? 3 : 10);
    for (Metric metric : metrics) {
      std::vector<double> dists(g.n);
      SetKernelOverride(KernelKind::kReference);
      double scalar_ms = TimeScalar(corpus, queries, metric, &dists);
      double comparator_sort_ms = TimeComparatorArgsort(dists, argsort_repeats);
      SetKernelOverride(KernelKind::kAuto);

      bench::Row("N=%-8zu d=%-4zu %-10s scalar %9.3f ms/query  cmp-sort %8.3f ms\n",
                 g.n, g.d, MetricName(metric), scalar_ms, comparator_sort_ms);

      if (!first) std::fprintf(json, ",\n");
      first = false;
      std::fprintf(json,
                   "    {\"n\": %zu, \"d\": %zu, \"metric\": \"%s\",\n"
                   "     \"scalar_per_query_ms\": %.4f,\n"
                   "     \"comparator_argsort_ms\": %.4f",
                   g.n, g.d, MetricName(metric), scalar_ms, comparator_sort_ms);

      for (KernelKind kind : kinds) {
        ModeResult r = TimeKernel(corpus, queries, metric, kind, argsort_repeats);
        double speedup = r.batch_kernel_ms > 0.0 ? scalar_ms / r.batch_kernel_ms : 0.0;
        double single_speedup = r.kernel_ms > 0.0 ? scalar_ms / r.kernel_ms : 0.0;
        bench::Row(
            "    %-9s kernel %9.3f ms/query (%.2fx)  batched %9.3f ms/query "
            "(%.2fx)  packed-sort %8.3f ms\n",
            KernelName(kind), r.kernel_ms, single_speedup, r.batch_kernel_ms,
            speedup, r.argsort_ms);
        std::fprintf(json,
                     ",\n     \"%s\": {\"kernel_ms\": %.4f, \"batch_kernel_ms\": "
                     "%.4f, \"packed_argsort_ms\": %.4f, \"speedup_vs_scalar\": "
                     "%.2f, \"batch_speedup_vs_scalar\": %.2f}",
                     KernelName(kind), r.kernel_ms, r.batch_kernel_ms, r.argsort_ms,
                     single_speedup, speedup);
      }
      std::fprintf(json, "}");
    }
  }
  std::fprintf(json, "\n  ],\n");

  // Selection grid: end-to-end single-query prologue, argsort vs top-R.
  // R = 1000 = K*(k, eps) at the paper's eps = 1e-3 working point.
  const size_t select_r = 1000;
  std::vector<GridPoint> select_grid;
  if (smoke) {
    select_grid = {{100000, 16}};
  } else {
    select_grid = {{100000, 16}, {1000000, 16}, {10000000, 16}, {10000000, 8}};
  }
  std::fprintf(json, "  \"selection\": [\n");
  bool select_ok = true;
  first = true;
  for (const GridPoint& g : select_grid) {
    Matrix corpus = RandomMatrix(g.n, g.d, /*seed=*/17);
    Matrix queries = RandomMatrix(smoke ? 2 : 4, g.d, /*seed=*/29);
    const CorpusNorms norms(corpus);
    const Metric metric = Metric::kSquaredL2;
    const double argsort_ms = TimeArgsortPath(corpus, norms, queries, metric);
    const double select_ms =
        TimeSelectPath(corpus, norms, queries, metric, select_r);
    const double cut = select_ms > 0.0 ? argsort_ms / select_ms : 0.0;
    bench::Row(
        "N=%-8zu d=%-4zu r=%-5zu argsort-path %9.3f ms/query  "
        "select-path %9.3f ms/query  (%.2fx)\n",
        g.n, g.d, select_r, argsort_ms, select_ms, cut);
    if (!first) std::fprintf(json, ",\n");
    first = false;
    std::fprintf(json,
                 "    {\"n\": %zu, \"d\": %zu, \"r\": %zu, "
                 "\"argsort_path_per_query_ms\": %.4f, "
                 "\"select_path_per_query_ms\": %.4f, "
                 "\"end_to_end_cut\": %.2f}",
                 g.n, g.d, select_r, argsort_ms, select_ms, cut);
    if (smoke && select_ms > argsort_ms) select_ok = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  bench::Row("wrote %s\n", json_path.c_str());
  if (!select_ok) {
    std::fprintf(stderr,
                 "FAIL: select path slower than argsort path in smoke gate\n");
    return 1;
  }
  return 0;
}
