// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Group-rationality / additivity audit (Sec 2.1 properties) across every
// exact algorithm in the library at moderate scale. The residual
// |sum_i s_i - (nu(I) - nu(empty))| must be at numerical noise level —
// this is the property a marketplace actually banks on when it pays out.

#include <cmath>
#include <numeric>

#include "bench_util.h"
#include "core/composite_game.h"
#include "core/exact_knn_shapley.h"
#include "core/knn_regression_shapley.h"
#include "core/multi_seller_shapley.h"
#include "core/weighted_knn_shapley.h"
#include "core/utility.h"
#include "dataset/synthetic.h"
#include "util/cli.h"

using namespace knnshap;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  bench::Banner("Axiom audit — group rationality of every exact algorithm",
                "sum of values == nu(I) - nu(empty), exactly (1e-9 tolerance)");

  Rng rng(1);
  Dataset train = MakeMnistLike(static_cast<size_t>(2000 * cli.Scale()), &rng);
  Rng trng(2);
  Dataset test = MakeMnistLike(20, &trng);
  Rng rrng(3);
  Dataset reg_train = train;
  AttachLinearTargets(&reg_train, 0.1, &rrng);
  Dataset reg_test = test;
  AttachLinearTargets(&reg_test, 0.1, &rrng);

  bench::Row("%-44s %14s %10s\n", "algorithm", "residual", "verdict");
  auto report = [&](const char* name, double residual) {
    bench::Row("%-44s %14.3e %10s\n", name, residual,
               std::fabs(residual) < 1e-9 ? "OK" : "VIOLATION");
  };

  {
    auto sv = ExactKnnShapley(train, test, 5);
    KnnSubsetUtility u(&train, &test, 5, KnnTask::kClassification);
    report("Theorem 1 (unweighted classification)",
           std::accumulate(sv.begin(), sv.end(), 0.0) - u.GrandValue());
  }
  {
    auto sv = ExactKnnRegressionShapley(reg_train, reg_test, 5);
    KnnSubsetUtility u(&reg_train, &reg_test, 5, KnnTask::kRegression);
    double empty = 0.0;
    for (size_t j = 0; j < reg_test.Size(); ++j) {
      empty -= reg_test.targets[j] * reg_test.targets[j];
    }
    empty /= static_cast<double>(reg_test.Size());
    report("Theorem 6 (unweighted regression)",
           std::accumulate(sv.begin(), sv.end(), 0.0) - (u.GrandValue() - empty));
  }
  {
    Dataset small = train.Subset([&] {
      std::vector<int> rows;
      for (int i = 0; i < 120; ++i) rows.push_back(i);
      return rows;
    }());
    Dataset small_test = test.Subset(std::vector<int>{0, 1, 2, 3});
    WeightedShapleyOptions options;
    options.k = 3;
    options.weights.kernel = WeightKernel::kInverseDistance;
    auto sv = ExactWeightedKnnShapley(small, small_test, options);
    KnnSubsetUtility u(&small, &small_test, 3, KnnTask::kWeightedClassification,
                       options.weights);
    report("Theorem 7 (weighted classification)",
           std::accumulate(sv.begin(), sv.end(), 0.0) - u.GrandValue());
  }
  {
    Rng org(4);
    auto owners = OwnerAssignment::Random(train.Size(), 40, &org);
    MultiSellerShapleyOptions options;
    options.k = 2;
    options.task = KnnTask::kClassification;
    auto sv = MultiSellerShapley(train, owners, test, options);
    KnnSubsetUtility u(&train, &test, 2, KnnTask::kClassification);
    report("Theorem 8 (multi-seller)",
           std::accumulate(sv.begin(), sv.end(), 0.0) - u.GrandValue());
  }
  {
    auto result = CompositeKnnShapley(train, test, 5);
    double total = result.analyst_value +
                   std::accumulate(result.seller_values.begin(),
                                   result.seller_values.end(), 0.0);
    report("Theorem 9 (composite classification)", total - result.total_utility);
  }
  {
    auto result = CompositeKnnRegressionShapley(reg_train, reg_test, 5);
    double total = result.analyst_value +
                   std::accumulate(result.seller_values.begin(),
                                   result.seller_values.end(), 0.0);
    report("Theorem 10 (composite regression)", total - result.total_utility);
  }
  return 0;
}
