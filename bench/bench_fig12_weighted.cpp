// Copyright 2026 the knnshap authors. Apache-2.0 license.
//
// Figure 12: weighted KNN classification — the exact O(N^K) algorithm
// (Theorem 7) vs the improved MC approximation (Algorithm 2 with the
// heuristic stopping rule, eps = delta = 0.01, as in Sec 6.2.2), plus the
// quadratic-time discretized WKNN-Shapley (arXiv:2401.11103, registered as
// weighted-fast) the library now prefers at these shapes:
//   (a) K = 3 fixed, N sweep: exact grows polynomially, MC and fast stay low;
//   (b) N = 100 fixed, K sweep: exact grows exponentially in K, MC/fast flat.

#include <vector>

#include "bench_util.h"
#include "core/improved_mc.h"
#include "core/weighted_knn_shapley.h"
#include "core/wknn_shapley.h"
#include "dataset/synthetic.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace knnshap;

namespace {

double RunExact(const Dataset& train, const Dataset& test, int k,
                std::vector<double>* sv) {
  WeightedShapleyOptions options;
  options.k = k;
  options.weights.kernel = WeightKernel::kInverseDistance;
  options.task = KnnTask::kWeightedClassification;
  WallTimer timer;
  *sv = ExactWeightedKnnShapley(train, test, options, /*parallel=*/false);
  return timer.Seconds();
}

double RunFast(const Dataset& train, const Dataset& test, int k,
               std::vector<double>* sv) {
  WknnShapleyOptions options;
  options.k = k;
  options.weights.kernel = WeightKernel::kInverseDistance;
  WallTimer timer;
  *sv = WknnShapley(train, test, options, /*parallel=*/false);
  return timer.Seconds();
}

double RunMc(const Dataset& train, const Dataset& test, int k, double eps,
             std::vector<double>* sv, int64_t* permutations) {
  WeightConfig weights;
  weights.kernel = WeightKernel::kInverseDistance;
  IncrementalKnnUtility utility(&train, &test, k, KnnTask::kWeightedClassification,
                                weights);
  ImprovedMcOptions options;
  options.k = k;
  options.epsilon = eps;
  options.delta = eps;
  options.utility_range = 1.0;
  options.stopping = McStoppingRule::kHeuristic;
  options.seed = 3;
  WallTimer timer;
  auto result = ImprovedMcShapley(&utility, options);
  *sv = result.shapley;
  *permutations = result.permutations;
  return timer.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const double eps = cli.GetDouble("eps", 0.01);
  bench::Banner("Figure 12 — weighted KNN: exact (Thm 7) vs improved MC (Alg 2)",
                "exact runtime grows polynomially in N and exponentially in K; "
                "the MC approximation barely moves");

  Rng trng(71);
  Dataset test = MakeDogFishLike(4, &trng);
  CsvWriter csv(cli.CsvPath());
  csv.Header({"panel", "n", "k", "exact_s", "mc_s", "fast_s", "mc_perms",
              "max_disagreement", "max_exact_fast_gap"});

  bench::Row("(a) K = 3, training-size sweep\n");
  bench::Row("%8s %12s %12s %12s %10s %16s %16s\n", "N", "exact(s)", "mc(s)",
             "fast(s)", "mc perms", "max|exact-mc|", "max|exact-fast|");
  std::vector<size_t> sizes = {40, 70, 100, 140};
  for (auto& s : sizes) s = static_cast<size_t>(s * cli.Scale());
  for (size_t n : sizes) {
    Rng rng(72);
    Dataset train = MakeDogFishLike(n, &rng);
    std::vector<double> exact_sv, mc_sv, fast_sv;
    int64_t perms = 0;
    double exact_s = RunExact(train, test, 3, &exact_sv);
    double mc_s = RunMc(train, test, 3, eps, &mc_sv, &perms);
    double fast_s = RunFast(train, test, 3, &fast_sv);
    double gap = MaxAbsDifference(exact_sv, mc_sv);
    double fast_gap = MaxAbsDifference(exact_sv, fast_sv);
    bench::Row("%8zu %12.3f %12.3f %12.3f %10lld %16.5f %16.5f\n", n, exact_s,
               mc_s, fast_s, static_cast<long long>(perms), gap, fast_gap);
    csv.Row({0, static_cast<double>(n), 3, exact_s, mc_s, fast_s,
             static_cast<double>(perms), gap, fast_gap});
  }

  bench::Row("\n(b) N = 100, K sweep\n");
  bench::Row("%8s %12s %12s %12s %10s %16s %16s\n", "K", "exact(s)", "mc(s)",
             "fast(s)", "mc perms", "max|exact-mc|", "max|exact-fast|");
  Rng rng(73);
  Dataset train = MakeDogFishLike(static_cast<size_t>(100 * cli.Scale()), &rng);
  for (int k : {1, 2, 3, 4}) {
    std::vector<double> exact_sv, mc_sv, fast_sv;
    int64_t perms = 0;
    double exact_s = RunExact(train, test, k, &exact_sv);
    double mc_s = RunMc(train, test, k, eps, &mc_sv, &perms);
    double fast_s = RunFast(train, test, k, &fast_sv);
    double gap = MaxAbsDifference(exact_sv, mc_sv);
    double fast_gap = MaxAbsDifference(exact_sv, fast_sv);
    bench::Row("%8d %12.3f %12.3f %12.3f %10lld %16.5f %16.5f\n", k, exact_s,
               mc_s, fast_s, static_cast<long long>(perms), gap, fast_gap);
    csv.Row({1, 100, static_cast<double>(k), exact_s, mc_s, fast_s,
             static_cast<double>(perms), gap, fast_gap});
  }
  return 0;
}
